// Tests for the hostile-network fault engine (net/fault.hpp): Gilbert-Elliott
// bursty loss, reordering, duplication, scripted partitions, and the
// determinism contract — an all-zero FaultProfile must consume no randomness,
// so calibrated runs (fig7-9, BENCH baselines) are bit-identical to a build
// without the fault engine.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "sim/fault_plan.hpp"
#include "sim/scheduler.hpp"
#include "transport/random.hpp"

namespace indiss::net {
namespace {

struct FaultFixture : ::testing::Test {
  sim::Scheduler scheduler;
  Network network{scheduler, LinkProfile{}, /*seed=*/42};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
  Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));
};

TEST_F(FaultFixture, BurstyLossDropsApproximatelyTheSteadyStateFraction) {
  FaultProfile& faults = network.profile().faults;
  faults.ge_p_good_to_bad = 0.1;
  faults.ge_p_bad_to_good = 0.3;
  faults.ge_loss_good = 0.0;
  faults.ge_loss_bad = 1.0;
  // Steady state: P(bad) = 0.1 / (0.1 + 0.3) = 25% loss.
  EXPECT_NEAR(faults.bursty_steady_state_loss(), 0.25, 1e-9);

  auto rx = bob.udp_socket(5000);
  int got = 0;
  rx->set_receive_handler([&](const Datagram&) { ++got; });
  auto tx = alice.udp_socket(0);
  constexpr int kPackets = 2000;
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("p"));
  }
  scheduler.run_all();
  EXPECT_GT(got, kPackets * 0.65);
  EXPECT_LT(got, kPackets * 0.85);
  EXPECT_EQ(network.stats().fault_lost_packets,
            static_cast<std::uint64_t>(kPackets - got));
  EXPECT_EQ(network.stats().dropped_packets,
            network.stats().fault_lost_packets);
}

TEST_F(FaultFixture, BurstyLossIsActuallyBursty) {
  // With rare transitions and total loss in the Bad state, drops cluster:
  // the number of distinct loss runs is far below what independent
  // (Bernoulli) loss at the same average rate would produce.
  FaultProfile& faults = network.profile().faults;
  faults.ge_p_good_to_bad = 0.02;
  faults.ge_p_bad_to_good = 0.1;
  faults.ge_loss_good = 0.0;
  faults.ge_loss_bad = 1.0;

  auto rx = bob.udp_socket(5000);
  std::vector<bool> arrived;
  constexpr int kPackets = 3000;
  arrived.assign(kPackets, false);
  rx->set_receive_handler([&](const Datagram& d) {
    arrived[static_cast<std::size_t>(d.payload[0]) * 256 +
            static_cast<std::size_t>(d.payload[1])] = true;
  });
  auto tx = alice.udp_socket(0);
  for (int i = 0; i < kPackets; ++i) {
    Bytes payload = {static_cast<std::uint8_t>(i / 256),
                     static_cast<std::uint8_t>(i % 256)};
    tx->send_to(Endpoint{bob.address(), 5000}, std::move(payload));
  }
  scheduler.run_all();

  int losses = 0;
  int runs = 0;  // maximal stretches of consecutive losses
  for (int i = 0; i < kPackets; ++i) {
    if (arrived[i]) continue;
    ++losses;
    if (i == 0 || arrived[i - 1]) ++runs;
  }
  ASSERT_GT(losses, 100);
  // Mean burst length is 1/p_bad_to_good = 10; independent loss would give
  // runs ≈ losses · (1 − loss_rate) ≈ 0.83 · losses.
  EXPECT_LT(runs * 3, losses);
}

TEST_F(FaultFixture, ReorderingLetsALaterPacketOvertakeAnEarlierOne) {
  FaultProfile& faults = network.profile().faults;
  faults.reorder_rate = 1.0;  // every packet gets extra delay
  faults.reorder_max_extra = sim::millis(5);

  auto rx = bob.udp_socket(5000);
  std::vector<std::uint8_t> order;
  rx->set_receive_handler(
      [&](const Datagram& d) { order.push_back(d.payload[0]); });
  auto tx = alice.udp_socket(0);
  constexpr int kPackets = 50;
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to(Endpoint{bob.address(), 5000},
                Bytes{static_cast<std::uint8_t>(i)});
  }
  scheduler.run_all();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kPackets));
  EXPECT_EQ(network.stats().reordered_packets,
            static_cast<std::uint64_t>(kPackets));
  // All sent at t=0 with i.i.d. extra delays: the arrival order is a random
  // permutation — astronomically unlikely to be sorted.
  bool sorted = true;
  for (int i = 1; i < kPackets; ++i) {
    if (order[i] < order[i - 1]) sorted = false;
  }
  EXPECT_FALSE(sorted);
}

TEST_F(FaultFixture, DuplicationDeliversTheSamePacketTwice) {
  network.profile().faults.duplicate_rate = 1.0;
  auto rx = bob.udp_socket(5000);
  int got = 0;
  rx->set_receive_handler([&](const Datagram& d) {
    ++got;
    EXPECT_EQ(to_string(d.payload), "once");
  });
  auto tx = alice.udp_socket(0);
  tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("once"));
  scheduler.run_all();
  EXPECT_EQ(got, 2);
  EXPECT_EQ(network.stats().duplicated_packets, 1u);
  EXPECT_EQ(network.stats().udp_deliveries, 2u);
}

TEST_F(FaultFixture, FaultsNeverTouchLoopbackTraffic) {
  FaultProfile& faults = network.profile().faults;
  faults.ge_p_good_to_bad = 1.0;
  faults.ge_loss_bad = 1.0;
  faults.reorder_rate = 1.0;
  faults.duplicate_rate = 1.0;
  auto rx = alice.udp_socket(5000);
  int got = 0;
  rx->set_receive_handler([&](const Datagram&) { ++got; });
  auto tx = alice.udp_socket(0);
  for (int i = 0; i < 20; ++i) {
    tx->send_to(Endpoint{alice.address(), 5000}, to_bytes("local"));
  }
  scheduler.run_all();
  EXPECT_EQ(got, 20);  // no loss, no duplicates
  EXPECT_EQ(network.stats().fault_lost_packets, 0u);
}

TEST_F(FaultFixture, PartitionSeversUdpAndNewTcpButNotEstablishedPipes) {
  auto listener = bob.tcp_listen(8080);
  std::shared_ptr<transport::TcpSocket> server;
  std::string server_got;
  listener->set_accept_handler([&](std::shared_ptr<transport::TcpSocket> s) {
    server = s;
    server->set_data_handler(
        [&](BytesView data) { server_got += to_string(data); });
  });
  auto pipe = alice.tcp_connect(Endpoint{bob.address(), 8080});
  ASSERT_NE(pipe, nullptr);
  scheduler.run_all();

  auto rx = bob.udp_socket(5000);
  int got = 0;
  rx->set_receive_handler([&](const Datagram&) { ++got; });
  auto tx = alice.udp_socket(0);

  network.set_partition_group(bob, 1);
  EXPECT_TRUE(network.partitioned(alice, bob));
  tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("severed"));
  scheduler.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(network.stats().partition_dropped_packets, 1u);
  // SYNs cannot cross the cut...
  EXPECT_EQ(alice.tcp_connect(Endpoint{bob.address(), 8080}), nullptr);
  // ...but the pipe established before the cut still carries data (the
  // deliberate semantics documented in net/fault.hpp).
  pipe->send(to_bytes("still here"));
  scheduler.run_all();
  EXPECT_EQ(server_got, "still here");

  network.heal_partitions();
  EXPECT_FALSE(network.partitioned(alice, bob));
  tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("healed"));
  scheduler.run_all();
  EXPECT_EQ(got, 1);
  ASSERT_NE(alice.tcp_connect(Endpoint{bob.address(), 8080}), nullptr);
}

TEST_F(FaultFixture, HostsInTheSameNonzeroGroupStayConnected) {
  network.set_partition_group(alice, 2);
  network.set_partition_group(bob, 2);
  EXPECT_FALSE(network.partitioned(alice, bob));
  network.set_partition_group(bob, 0);
  EXPECT_TRUE(network.partitioned(alice, bob));
}

// The determinism contract: with the default all-zero FaultProfile the
// network consumes exactly one RNG draw per lossy remote delivery and
// nothing else — verified by replaying the draw sequence with an oracle
// engine seeded identically. A regression that adds an unconditional fault
// draw shifts the sequence and breaks this test (and would silently shift
// fig7-9 / BENCH baselines).
TEST(FaultDeterminism, ZeroFaultProfileConsumesNoExtraRandomness) {
  constexpr std::uint64_t kSeed = 99;
  constexpr int kPackets = 200;
  constexpr double kLoss = 0.25;

  sim::Scheduler scheduler;
  LinkProfile profile;
  profile.udp_loss_rate = kLoss;
  Network network{scheduler, profile, kSeed};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
  Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));

  auto rx = bob.udp_socket(5000);
  std::vector<bool> arrived(kPackets, false);
  rx->set_receive_handler([&](const Datagram& d) {
    arrived[static_cast<std::size_t>(d.payload[0])] = true;
  });
  auto tx = alice.udp_socket(0);
  for (int i = 0; i < kPackets; ++i) {
    tx->send_to(Endpoint{bob.address(), 5000},
                Bytes{static_cast<std::uint8_t>(i)});
  }
  scheduler.run_all();

  transport::Random oracle(kSeed);
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(arrived[i], !oracle.chance(kLoss)) << "packet " << i;
  }
}

TEST(FaultDeterminism, SameSeedSameFaultsProduceBitIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Scheduler scheduler;
    LinkProfile profile;
    profile.faults.ge_p_good_to_bad = 0.05;
    profile.faults.ge_p_bad_to_good = 0.2;
    profile.faults.ge_loss_bad = 0.9;
    profile.faults.reorder_rate = 0.1;
    profile.faults.duplicate_rate = 0.05;
    Network network{scheduler, profile, seed};
    Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
    Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));
    auto rx = bob.udp_socket(5000);
    std::string fingerprint;
    rx->set_receive_handler([&](const Datagram& d) {
      fingerprint += std::to_string(d.payload[0]);
      fingerprint += "@";
      fingerprint += std::to_string(scheduler.now().count());
      fingerprint += ";";
    });
    auto tx = alice.udp_socket(0);
    for (int i = 0; i < 300; ++i) {
      tx->send_to(Endpoint{bob.address(), 5000},
                  Bytes{static_cast<std::uint8_t>(i & 0xff)});
    }
    scheduler.run_all();
    return fingerprint;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FaultPlanTest, ArmedStepsFireInOrderAtTheProgrammedInstants) {
  sim::Scheduler scheduler;
  Network network{scheduler, LinkProfile{}, /*seed=*/1};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
  Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));

  std::vector<std::string> fired_at;
  sim::FaultPlan plan;
  plan.at(sim::seconds(2), "cut",
          [&] {
            network.set_partition_group(bob, 1);
            fired_at.push_back("cut@" +
                               std::to_string(scheduler.now().count()));
          })
      .at(sim::seconds(5), "heal", [&] {
        network.heal_partitions();
        fired_at.push_back("heal@" +
                           std::to_string(scheduler.now().count()));
      });
  EXPECT_EQ(plan.size(), 2u);
  EXPECT_FALSE(plan.armed());
  plan.arm(scheduler);
  EXPECT_TRUE(plan.armed());
  EXPECT_THROW(plan.at(sim::seconds(9), "late", [] {}), std::logic_error);
  EXPECT_THROW(plan.arm(scheduler), std::logic_error);

  scheduler.run_all();
  EXPECT_EQ(plan.fired(), 2u);
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], "cut@" + std::to_string(sim::seconds(2).count()));
  EXPECT_EQ(fired_at[1], "heal@" + std::to_string(sim::seconds(5).count()));
  ASSERT_EQ(plan.log().size(), 2u);
  EXPECT_EQ(plan.log()[0], "cut");
  EXPECT_EQ(plan.log()[1], "heal");
  EXPECT_FALSE(network.partitioned(alice, bob));
}

}  // namespace
}  // namespace indiss::net
