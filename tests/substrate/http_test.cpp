// Unit tests for the event-based HTTP parser and message model.
#include <gtest/gtest.h>

#include "http/message.hpp"
#include "http/parser.hpp"

namespace indiss::http {
namespace {

TEST(Headers, CaseInsensitiveAccessPreservingOrder) {
  Headers h;
  h.set("HOST", "239.255.255.250:1900");
  h.set("ST", "ssdp:all");
  EXPECT_EQ(h.get("host").value(), "239.255.255.250:1900");
  EXPECT_EQ(h.get_or("missing", "fallback"), "fallback");
  h.set("st", "upnp:rootdevice");  // overwrite, case-insensitively
  EXPECT_EQ(h.get("ST").value(), "upnp:rootdevice");
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.all()[0].first, "HOST");
}

TEST(HttpMessage, SerializeRequestMatchesSsdpShape) {
  auto m = HttpMessage::request("M-SEARCH", "*");
  m.headers.set("HOST", "239.255.255.250:1900");
  m.headers.set("MAN", "\"ssdp:discover\"");
  m.headers.set("MX", "0");
  m.headers.set("ST", "urn:schemas-upnp-org:device:clock:1");
  auto text = m.serialize();
  EXPECT_TRUE(text.starts_with("M-SEARCH * HTTP/1.1\r\n"));
  EXPECT_NE(text.find("ST: urn:schemas-upnp-org:device:clock:1\r\n"),
            std::string::npos);
  EXPECT_TRUE(text.ends_with("\r\n\r\n"));
}

TEST(HttpMessage, ParseRoundTripRequest) {
  auto m = HttpMessage::request("GET", "/description.xml");
  m.headers.set("HOST", "10.0.0.2:4004");
  auto parsed = HttpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_request());
  EXPECT_EQ(parsed->method, "GET");
  EXPECT_EQ(parsed->target, "/description.xml");
  EXPECT_EQ(parsed->headers.get("Host").value(), "10.0.0.2:4004");
}

TEST(HttpMessage, ParseRoundTripResponseWithBody) {
  auto m = HttpMessage::response(200, "OK");
  m.headers.set("CONTENT-TYPE", "text/xml");
  m.body = "<root><device/></root>";
  auto parsed = HttpMessage::parse(m.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->is_request());
  EXPECT_EQ(parsed->status, 200);
  EXPECT_EQ(parsed->body, "<root><device/></root>");
}

TEST(HttpParser, IncrementalFeedingByteByByte) {
  MessageCollector collector;
  HttpParser parser(collector);
  std::string text =
      "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello";
  for (char c : text) parser.feed(std::string_view(&c, 1));
  ASSERT_EQ(collector.messages().size(), 1u);
  EXPECT_EQ(collector.messages()[0].body, "hello");
}

TEST(HttpParser, MultipleMessagesInOneStream) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed(
      "GET /a HTTP/1.1\r\n\r\n"
      "GET /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy"
      "GET /c HTTP/1.1\r\n\r\n");
  ASSERT_EQ(collector.messages().size(), 3u);
  EXPECT_EQ(collector.messages()[0].target, "/a");
  EXPECT_EQ(collector.messages()[1].body, "xy");
  EXPECT_EQ(collector.messages()[2].target, "/c");
}

TEST(HttpParser, ResponseWithoutContentLengthReadsUntilClose) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed("HTTP/1.1 200 OK\r\nServer: x\r\n\r\npartial body");
  EXPECT_TRUE(collector.messages().empty());  // still open
  parser.feed(" more");
  parser.finish();  // connection closed
  ASSERT_EQ(collector.messages().size(), 1u);
  EXPECT_EQ(collector.messages()[0].body, "partial body more");
}

TEST(HttpParser, EmitsFineGrainedEvents) {
  struct Recorder : HttpEventHandler {
    std::vector<std::string> events;
    void on_request_line(std::string_view m, std::string_view t,
                         std::string_view) override {
      events.push_back("request:" + std::string(m) + ":" + std::string(t));
    }
    void on_status_line(int s, std::string_view, std::string_view) override {
      events.push_back("status:" + std::to_string(s));
    }
    void on_header(std::string_view n, std::string_view v) override {
      events.push_back("header:" + std::string(n) + "=" + std::string(v));
    }
    void on_headers_complete() override { events.push_back("headers-done"); }
    void on_body(std::string_view b) override {
      events.push_back("body:" + std::string(b));
    }
    void on_message_complete() override { events.push_back("done"); }
    void on_parse_error(std::string_view r) override {
      events.push_back("error:" + std::string(r));
    }
  } recorder;
  HttpParser parser(recorder);
  parser.feed("NOTIFY * HTTP/1.1\r\nNT: upnp:rootdevice\r\n\r\n");
  ASSERT_EQ(recorder.events.size(), 4u);
  EXPECT_EQ(recorder.events[0], "request:NOTIFY:*");
  EXPECT_EQ(recorder.events[1], "header:NT=upnp:rootdevice");
  EXPECT_EQ(recorder.events[2], "headers-done");
  EXPECT_EQ(recorder.events[3], "done");
}

TEST(HttpParser, RejectsMalformedStartLine) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed("NONSENSE\r\n\r\n");
  EXPECT_TRUE(parser.failed());
  EXPECT_FALSE(collector.last_error().empty());
}

TEST(HttpParser, RejectsChunkedEncoding) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n");
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, RejectsNegativeContentLength) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed("HTTP/1.1 200 OK\r\nContent-Length: -1\r\n\r\n");
  EXPECT_TRUE(parser.failed());
}

TEST(HttpParser, ToleratesBareLfLineEndings) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed("GET / HTTP/1.1\nHost: x\n\n");
  ASSERT_EQ(collector.messages().size(), 1u);
}

TEST(HttpParser, ResetRecoversFromFailure) {
  MessageCollector collector;
  HttpParser parser(collector);
  parser.feed("garbage line\r\n");
  EXPECT_TRUE(parser.failed());
  parser.reset();
  parser.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_FALSE(parser.failed());
  EXPECT_EQ(collector.messages().size(), 1u);
}

TEST(HttpMessage, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(HttpMessage::parse("not http at all").has_value());
}

}  // namespace
}  // namespace indiss::http
