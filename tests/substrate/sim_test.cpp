// Unit tests for the discrete-event scheduler: the determinism foundation of
// every experiment in the repository.
#include <gtest/gtest.h>

#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace indiss::sim {
namespace {

TEST(Scheduler, RunsTasksInDeadlineOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule(millis(30), [&] { order.push_back(3); });
  scheduler.schedule(millis(10), [&] { order.push_back(1); });
  scheduler.schedule(millis(20), [&] { order.push_back(2); });
  scheduler.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), millis(30));
}

TEST(Scheduler, EqualDeadlinesAreFifo) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    scheduler.schedule(millis(5), [&order, i] { order.push_back(i); });
  }
  scheduler.run_all();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler scheduler;
  int runs = 0;
  auto handle = scheduler.schedule(millis(5), [&] { ++runs; });
  handle.cancel();
  scheduler.run_all();
  EXPECT_EQ(runs, 0);
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler scheduler;
  int runs = 0;
  scheduler.schedule(millis(10), [&] { ++runs; });
  scheduler.schedule(millis(50), [&] { ++runs; });
  scheduler.run_until(millis(20));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(scheduler.now(), millis(20));
  scheduler.run_until(millis(100));
  EXPECT_EQ(runs, 2);
}

TEST(Scheduler, PeriodicFiresUntilCancelled) {
  Scheduler scheduler;
  int runs = 0;
  auto handle = scheduler.schedule_periodic(millis(10), [&] { ++runs; });
  scheduler.run_until(millis(35));
  EXPECT_EQ(runs, 3);
  handle.cancel();
  scheduler.run_until(millis(100));
  EXPECT_EQ(runs, 3);
}

TEST(Scheduler, PeriodicCancelFromWithinTask) {
  Scheduler scheduler;
  int runs = 0;
  TaskHandle handle;
  handle = scheduler.schedule_periodic(millis(10), [&] {
    if (++runs == 2) handle.cancel();
  });
  scheduler.run_until(millis(200));
  EXPECT_EQ(runs, 2);
}

TEST(Scheduler, TasksScheduledDuringRunExecute) {
  Scheduler scheduler;
  int depth = 0;
  scheduler.schedule(millis(1), [&] {
    scheduler.schedule(millis(1), [&] { depth = 2; });
    depth = 1;
  });
  scheduler.run_all();
  EXPECT_EQ(depth, 2);
  EXPECT_EQ(scheduler.now(), millis(2));
}

TEST(Scheduler, RunAllThrowsOnRunawayPeriodicTask) {
  Scheduler scheduler;
  scheduler.schedule_periodic(millis(1), [] {});
  EXPECT_THROW(scheduler.run_all(1000), std::runtime_error);
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler scheduler;
  bool ran = false;
  scheduler.schedule(millis(-5), [&] { ran = true; });
  scheduler.run_all();
  EXPECT_TRUE(ran);
  EXPECT_EQ(scheduler.now(), SimTime{0});
}

TEST(Random, SameSeedSameSequence) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1'000'000), b.uniform_int(0, 1'000'000));
  }
}

TEST(Random, UniformDurationWithinBounds) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) {
    auto d = rng.uniform_duration(millis(10), millis(20));
    EXPECT_GE(d, millis(10));
    EXPECT_LE(d, millis(20));
  }
}

TEST(Time, ConversionsAndFormatting) {
  EXPECT_EQ(millis_f(0.7).count(), 700'000);
  EXPECT_DOUBLE_EQ(to_millis(millis(40)), 40.0);
  EXPECT_EQ(format_millis(millis_f(0.12)), "0.120 ms");
}

}  // namespace
}  // namespace indiss::sim
