// Property and stress tests for the slot-arena scheduler, pinning the
// contracts the heap rewrite must preserve (FIFO among equal deadlines, safe
// cancellation in every ordering) and the ones it introduces (generation
// safety across slot reuse, zero-allocation schedule/cancel/fire cycles,
// lazily-dropped cancelled entries in the executed count).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
// Allocation meter: the scheduler's hot path promises zero heap traffic for
// inline tasks once the arena and heap vectors are warm; these tests hold it
// to that in every build type, Debug included.
#include "tests/support/alloc_meter.hpp"

namespace indiss::sim {
namespace {

TEST(SchedulerProperty, EqualDeadlinesStayFifoUnderChurn) {
  // Many tasks across few distinct deadlines, with cancellations punched into
  // the middle: survivors must still run deadline-major, scheduling-order
  // minor (the seq tie-break the paper's link model depends on).
  Scheduler scheduler;
  Random rng(2026);
  struct Expected {
    std::int64_t deadline_ms;
    int id;
  };
  std::vector<Expected> expected;
  std::vector<TaskHandle> handles;
  std::vector<int> ran;
  for (int id = 0; id < 500; ++id) {
    std::int64_t deadline_ms = rng.uniform_int(1, 10);
    handles.push_back(scheduler.schedule(millis(deadline_ms),
                                         [&ran, id] { ran.push_back(id); }));
    expected.push_back({deadline_ms, id});
  }
  // Cancel every seventh task.
  for (std::size_t i = 0; i < handles.size(); i += 7) {
    handles[i].cancel();
    expected[i].id = -1;
  }
  std::size_t executed = scheduler.run_all();

  std::vector<int> want;
  for (std::int64_t deadline = 1; deadline <= 10; ++deadline) {
    for (const Expected& e : expected) {
      if (e.id >= 0 && e.deadline_ms == deadline) want.push_back(e.id);
    }
  }
  EXPECT_EQ(ran, want);
  EXPECT_EQ(executed, want.size());  // cancelled entries are never counted
}

TEST(SchedulerProperty, CancelDuringExecutionSuppressesPendingTask) {
  Scheduler scheduler;
  int runs = 0;
  TaskHandle victim;
  scheduler.schedule(millis(1), [&] { victim.cancel(); });
  victim = scheduler.schedule(millis(2), [&] { ++runs; });
  scheduler.run_all();
  EXPECT_EQ(runs, 0);
}

TEST(SchedulerProperty, OneShotSelfCancelDuringExecutionIsNoOp) {
  Scheduler scheduler;
  int runs = 0;
  TaskHandle self;
  self = scheduler.schedule(millis(1), [&] {
    ++runs;
    self.cancel();  // the task already fired; this must do nothing
  });
  scheduler.run_all();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(self.pending());
}

TEST(SchedulerProperty, CancelOfFiredHandleIsNoOp) {
  Scheduler scheduler;
  int first = 0, second = 0;
  TaskHandle handle = scheduler.schedule(millis(1), [&] { ++first; });
  scheduler.run_all();
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(handle.pending());
  // The freed slot is immediately reusable; the stale handle must not be
  // able to touch whatever occupies it next.
  TaskHandle next = scheduler.schedule(millis(1), [&] { ++second; });
  handle.cancel();
  EXPECT_TRUE(next.pending());
  scheduler.run_all();
  EXPECT_EQ(second, 1);
}

TEST(SchedulerProperty, StaleHandleCannotCancelSlotReuser) {
  Scheduler scheduler;
  int runs = 0;
  // Cancel A to free its slot, then B reuses it (fresh scheduler: both land
  // in slot 0). A's handle names the old generation and must stay inert.
  TaskHandle a = scheduler.schedule(millis(1), [&] { ADD_FAILURE(); });
  a.cancel();
  TaskHandle b = scheduler.schedule(millis(1), [&] { ++runs; });
  a.cancel();
  a.cancel();  // idempotent
  EXPECT_FALSE(a.pending());
  EXPECT_TRUE(b.pending());
  scheduler.run_all();
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerProperty, ThrowingPeriodicBodyFreesItsSlotAndEndsTheChain) {
  Scheduler scheduler;
  int runs = 0;
  TaskHandle handle = scheduler.schedule_periodic(millis(1), [&] {
    if (++runs == 2) throw std::runtime_error("boom");
  });
  EXPECT_THROW(scheduler.run_until(millis(10)), std::runtime_error);
  EXPECT_EQ(runs, 2);
  EXPECT_FALSE(handle.pending());  // the chain is over, not stuck kRunning
  handle.cancel();                 // and cancelling the dead chain is a no-op
  // The scheduler stays fully usable and the slot is reusable.
  int later = 0;
  scheduler.schedule(millis(1), [&] { ++later; });
  scheduler.run_until(millis(20));
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(later, 1);
}

TEST(SchedulerProperty, HandleOutlivingSchedulerIsInert) {
  TaskHandle handle;
  {
    Scheduler scheduler;
    handle = scheduler.schedule_periodic(millis(1), [] {});
    EXPECT_TRUE(handle.pending());
  }
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not touch the dead scheduler
}

TEST(SchedulerStress, PeriodicRearmSurvives10kTicksWithoutAllocationGrowth) {
  Scheduler scheduler;
  std::uint64_t ticks = 0;
  TaskHandle handle = scheduler.schedule_periodic(millis(1), [&] { ++ticks; });
  scheduler.run_until(millis(10));  // warm the heap and arena vectors
  std::uint64_t allocs_before = indiss::testing::g_heap_allocs;
  scheduler.run_until(millis(10 + 10'000));
  std::uint64_t allocs = indiss::testing::g_heap_allocs - allocs_before;
  handle.cancel();
  EXPECT_EQ(ticks, 10'010u);
  EXPECT_EQ(allocs, 0u);  // rearm reuses the same slot: no heap traffic
}

TEST(SchedulerStress, InlineScheduleCancelFireCyclesAreAllocationFree) {
  Scheduler scheduler;
  std::uint64_t fired = 0;
  // Warm-up: let the arena, free list and heap vector reach steady state.
  for (int i = 0; i < 64; ++i) scheduler.schedule(millis(1), [&] { ++fired; });
  scheduler.run_all();
  std::uint64_t allocs_before = indiss::testing::g_heap_allocs;
  for (int round = 0; round < 1'000; ++round) {
    TaskHandle keep = scheduler.schedule(millis(1), [&] { ++fired; });
    TaskHandle drop = scheduler.schedule(millis(2), [&] { ++fired; });
    drop.cancel();
    scheduler.run_for(millis(2));
    static_cast<void>(keep);
  }
  std::uint64_t allocs = indiss::testing::g_heap_allocs - allocs_before;
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(fired, 64u + 1'000u);
}

TEST(SchedulerProperty, RunUntilNeverRunsPastDeadlineOverCancelledHead) {
  // Historic std::map-scheduler bug, pinned fixed: a cancelled entry at the
  // queue head made run_until execute the next live task even when that task
  // lay beyond the deadline.
  Scheduler scheduler;
  int runs = 0;
  TaskHandle cancelled = scheduler.schedule(millis(5), [&] { ++runs; });
  scheduler.schedule(millis(50), [&] { ++runs; });
  cancelled.cancel();
  std::size_t executed = scheduler.run_until(millis(20));
  EXPECT_EQ(executed, 0u);  // nothing live was due; nothing ran
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(scheduler.now(), millis(20));
  executed = scheduler.run_until(millis(100));
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerProperty, ExecutedCountsOnlyInvokedBodies) {
  Scheduler scheduler;
  std::vector<TaskHandle> handles;
  int runs = 0;
  for (int i = 0; i < 10; ++i) {
    handles.push_back(scheduler.schedule(millis(i + 1), [&] { ++runs; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(scheduler.pending_tasks(), 5u);
  std::size_t executed = scheduler.run_all();
  EXPECT_EQ(executed, 5u);
  EXPECT_EQ(runs, 5);
  EXPECT_EQ(scheduler.executed_tasks(), 5u);
}

TEST(SchedulerStress, RandomChurnMatchesReferenceModel) {
  // Model check: a pile of randomized schedules and cancels must execute in
  // exactly the order a sorted (deadline, seq) reference predicts.
  Scheduler scheduler;
  Random rng(7);
  struct Ref {
    std::int64_t at_ms;
    int seq;
    bool cancelled = false;
  };
  std::vector<Ref> reference;
  std::vector<TaskHandle> handles;
  std::vector<int> ran;
  for (int seq = 0; seq < 2'000; ++seq) {
    std::int64_t at_ms = rng.uniform_int(1, 100);
    reference.push_back({at_ms, seq});
    handles.push_back(
        scheduler.schedule(millis(at_ms), [&ran, seq] { ran.push_back(seq); }));
    // Occasionally cancel a random earlier task (possibly one already
    // cancelled; cancel is idempotent).
    if (rng.uniform_int(0, 4) == 0) {
      int victim = static_cast<int>(rng.uniform_int(0, seq));
      handles[static_cast<std::size_t>(victim)].cancel();
      reference[static_cast<std::size_t>(victim)].cancelled = true;
    }
  }
  scheduler.run_all();

  std::vector<int> want;
  for (std::int64_t at = 1; at <= 100; ++at) {
    for (const Ref& ref : reference) {
      if (!ref.cancelled && ref.at_ms == at) want.push_back(ref.seq);
    }
  }
  EXPECT_EQ(ran, want);
}

}  // namespace
}  // namespace indiss::sim
