// Unit tests for the common substrate: byte buffers, strings, URIs.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/strings.hpp"
#include "common/uri.hpp"

namespace indiss {
namespace {

TEST(ByteWriter, BigEndianIntegers) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u24(0x56789A);
  w.u32(0xDEADBEEF);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 1u + 2 + 3 + 4);
  EXPECT_EQ(b[0], 0xAB);
  EXPECT_EQ(b[1], 0x12);
  EXPECT_EQ(b[2], 0x34);
  EXPECT_EQ(b[3], 0x56);
  EXPECT_EQ(b[5], 0x9A);
  EXPECT_EQ(b[6], 0xDE);
  EXPECT_EQ(b[9], 0xEF);
}

TEST(ByteWriter, Str16RoundTrip) {
  ByteWriter w;
  w.str16("service:clock");
  w.str16("");  // empty strings are legal everywhere in SLP
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str16(), "service:clock");
  EXPECT_EQ(r.str16(), "");
  EXPECT_TRUE(r.empty());
}

TEST(ByteWriter, PatchU24FixesLengthField) {
  ByteWriter w;
  w.u16(0);
  w.u24(0);
  w.raw(std::string_view("payload"));
  w.patch_u24(2, static_cast<std::uint32_t>(w.size()));
  ByteReader r(w.bytes());
  (void)r.u16();
  EXPECT_EQ(r.u24(), w.size());
}

TEST(ByteReader, TruncationThrowsDecodeError) {
  ByteWriter w;
  w.u16(0x1234);
  ByteReader r(w.bytes());
  (void)r.u8();
  (void)r.u8();
  EXPECT_THROW((void)r.u8(), DecodeError);
}

TEST(ByteReader, Str16TruncatedBodyThrows) {
  ByteWriter w;
  w.u16(10);  // claims 10 bytes follow
  w.raw(std::string_view("abc"));
  ByteReader r(w.bytes());
  EXPECT_THROW((void)r.str16(), DecodeError);
}

TEST(ByteReader, U64RoundTrip) {
  ByteWriter w;
  w.u64(0x0123456789ABCDEFULL);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
}

TEST(Strings, SplitPreservesEmptyFields) {
  auto parts = str::split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitTrimmedDropsBlanks) {
  auto parts = str::split_trimmed(" a , , b ,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, CaseInsensitiveComparisons) {
  EXPECT_TRUE(str::iequals("Content-Length", "content-length"));
  EXPECT_FALSE(str::iequals("a", "ab"));
  EXPECT_TRUE(str::istarts_with("M-SEARCH * HTTP/1.1", "m-search"));
}

TEST(Strings, ParseLongFallsBackOnGarbage) {
  EXPECT_EQ(str::parse_long("42", -1), 42);
  EXPECT_EQ(str::parse_long(" 42 ", -1), 42);  // trimmed
  EXPECT_EQ(str::parse_long("4x2", -1), -1);
  EXPECT_EQ(str::parse_long("", -1), -1);
}

TEST(Uri, ParsesHostPortPath) {
  auto uri = Uri::parse("http://128.93.8.112:4004/description.xml");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->scheme, "http");
  EXPECT_EQ(uri->host, "128.93.8.112");
  EXPECT_EQ(uri->port, 4004);
  EXPECT_EQ(uri->path, "/description.xml");
  EXPECT_EQ(uri->to_string(), "http://128.93.8.112:4004/description.xml");
}

TEST(Uri, DefaultsPortAndPath) {
  auto uri = Uri::parse("soap://10.0.0.1");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->port, 0);
  EXPECT_EQ(uri->path, "");
}

TEST(Uri, RejectsMalformed) {
  EXPECT_FALSE(Uri::parse("no-scheme-here").has_value());
  EXPECT_FALSE(Uri::parse("http://host:notaport/x").has_value());
  EXPECT_FALSE(Uri::parse("http://").has_value());
}

}  // namespace
}  // namespace indiss
