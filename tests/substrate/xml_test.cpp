// Unit tests for the SAX XML parser and DOM used by UPnP descriptions.
#include <gtest/gtest.h>

#include "xml/dom.hpp"
#include "xml/sax.hpp"

namespace indiss::xml {
namespace {

struct Recorder : SaxHandler {
  std::vector<std::string> events;
  void on_start_element(std::string_view name,
                        const Attributes& attrs) override {
    std::string e = "start:" + std::string(name);
    for (const auto& [k, v] : attrs) e += " " + k + "=" + v;
    events.push_back(e);
  }
  void on_text(std::string_view text) override {
    events.push_back("text:" + std::string(text));
  }
  void on_end_element(std::string_view name) override {
    events.push_back("end:" + std::string(name));
  }
};

TEST(Sax, BasicDocumentEvents) {
  Recorder r;
  auto result = parse("<root><a>hi</a><b x=\"1\"/></root>", r);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(r.events,
            (std::vector<std::string>{"start:root", "start:a", "text:hi",
                                      "end:a", "start:b x=1", "end:b",
                                      "end:root"}));
}

TEST(Sax, XmlDeclarationAndCommentsIgnored) {
  Recorder r;
  auto result =
      parse("<?xml version=\"1.0\"?><!-- c --><root><!-- inner --></root>", r);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(r.events.front(), "start:root");
}

TEST(Sax, EntitiesDecoded) {
  Recorder r;
  auto result = parse("<a>&lt;tag&gt; &amp; &quot;q&quot; &#65;</a>", r);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(r.events[1], "text:<tag> & \"q\" A");
}

TEST(Sax, CdataPassedThrough) {
  Recorder r;
  auto result = parse("<a><![CDATA[<raw> & stuff]]></a>", r);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(r.events[1], "text:<raw> & stuff");
}

TEST(Sax, MismatchedTagsRejected) {
  Recorder r;
  EXPECT_FALSE(parse("<a><b></a></b>", r).ok);
}

TEST(Sax, UnclosedElementRejected) {
  Recorder r;
  EXPECT_FALSE(parse("<a><b>", r).ok);
}

TEST(Sax, DoctypeRejected) {
  Recorder r;
  EXPECT_FALSE(parse("<!DOCTYPE foo><a/>", r).ok);
}

TEST(Sax, MultipleRootsRejected) {
  Recorder r;
  EXPECT_FALSE(parse("<a/><b/>", r).ok);
}

TEST(Sax, BadEntityRejected) {
  Recorder r;
  EXPECT_FALSE(parse("<a>&bogus;</a>", r).ok);
}

TEST(Sax, EscapeProducesParseableText) {
  Recorder r;
  std::string nasty = "a<b&c>\"d'";
  auto doc = "<x>" + escape(nasty) + "</x>";
  ASSERT_TRUE(parse(doc, r).ok);
  EXPECT_EQ(r.events[1], "text:" + nasty);
}

TEST(Dom, BuildFindAndText) {
  auto result = parse_document(
      "<root><device><friendlyName>Clock</friendlyName>"
      "<serviceList><service><controlURL>/c1</controlURL></service>"
      "<service><controlURL>/c2</controlURL></service></serviceList>"
      "</device></root>");
  ASSERT_NE(result.root, nullptr) << result.error;
  EXPECT_EQ(result.root->text_at("device/friendlyName"), "Clock");
  EXPECT_EQ(result.root->text_at("device/missing", "dflt"), "dflt");
  const Element* list = result.root->find("device/serviceList");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->children_named("service").size(), 2u);
}

TEST(Dom, SerializeParseRoundTrip) {
  Element root("root");
  root.set_attribute("xmlns", "urn:test");
  auto& device = root.add_child("device");
  device.add_child("UDN").set_text("uuid:X");
  device.add_child("note").set_text("a<b&c");
  auto text = root.serialize();
  auto reparsed = parse_document(text);
  ASSERT_NE(reparsed.root, nullptr) << reparsed.error;
  EXPECT_EQ(reparsed.root->text_at("device/UDN"), "uuid:X");
  EXPECT_EQ(reparsed.root->text_at("device/note"), "a<b&c");
}

TEST(Dom, ParseFailureReturnsError) {
  auto result = parse_document("<broken");
  EXPECT_EQ(result.root, nullptr);
  EXPECT_FALSE(result.error.empty());
}

}  // namespace
}  // namespace indiss::xml
