// Tests for the dynamic-reachability mobility model: Network reachability
// zones (multicast range) and sim::MobilityModel (scripted + seeded
// random-waypoint timelines), plus the determinism contract — zone checks
// consume no randomness, so an immobile run is bit-identical to a build
// without the mobility engine.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/host.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "sim/mobility.hpp"
#include "sim/scheduler.hpp"
#include "transport/random.hpp"

namespace indiss::net {
namespace {

struct MobilityFixture : ::testing::Test {
  sim::Scheduler scheduler;
  Network network{scheduler, LinkProfile{}, /*seed=*/42};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
  Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));
};

TEST_F(MobilityFixture, OutOfZoneUnicastAndMulticastAreDropped) {
  auto rx = bob.udp_socket(5000);
  int got = 0;
  rx->set_receive_handler([&](const Datagram&) { ++got; });
  auto mrx = bob.udp_socket(5353);
  mrx->join_group(IpAddress(224, 0, 0, 251));
  int multicast_got = 0;
  mrx->set_receive_handler([&](const Datagram&) { ++multicast_got; });
  auto tx = alice.udp_socket(0);

  network.set_reachability_zone(bob, 1);
  EXPECT_TRUE(network.out_of_range(alice, bob));
  tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("gone"));
  tx->send_to(Endpoint{IpAddress(224, 0, 0, 251), 5353}, to_bytes("gone"));
  scheduler.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(multicast_got, 0);
  EXPECT_EQ(network.stats().zone_dropped_packets, 2u);
  EXPECT_EQ(network.stats().dropped_packets, 2u);

  // Roaming back restores both paths.
  network.set_reachability_zone(bob, 0);
  EXPECT_FALSE(network.out_of_range(alice, bob));
  tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("back"));
  tx->send_to(Endpoint{IpAddress(224, 0, 0, 251), 5353}, to_bytes("back"));
  scheduler.run_all();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(multicast_got, 1);
}

TEST_F(MobilityFixture, HostsInTheSameNonzeroZoneStayInRange) {
  network.set_reachability_zone(alice, 3);
  network.set_reachability_zone(bob, 3);
  EXPECT_FALSE(network.out_of_range(alice, bob));
  network.collapse_zones();
  EXPECT_FALSE(network.out_of_range(alice, bob));
  EXPECT_EQ(network.reachability_zone(alice), 0);
}

TEST_F(MobilityFixture, NewTcpConnectionsAreRefusedAcrossZones) {
  auto listener = bob.tcp_listen(8080);
  listener->set_accept_handler([](std::shared_ptr<transport::TcpSocket>) {});
  network.set_reachability_zone(bob, 1);
  EXPECT_EQ(alice.tcp_connect(Endpoint{bob.address(), 8080}), nullptr);
  network.collapse_zones();
  EXPECT_NE(alice.tcp_connect(Endpoint{bob.address(), 8080}), nullptr);
}

TEST_F(MobilityFixture, ZonesComposeWithPartitions) {
  // Same zone, different partition group: still severed — the two fault
  // mechanisms are orthogonal and either alone cuts traffic.
  auto rx = bob.udp_socket(5000);
  int got = 0;
  rx->set_receive_handler([&](const Datagram&) { ++got; });
  auto tx = alice.udp_socket(0);
  network.set_reachability_zone(alice, 1);
  network.set_reachability_zone(bob, 1);
  network.set_partition_group(bob, 1);
  tx->send_to(Endpoint{bob.address(), 5000}, to_bytes("cut"));
  scheduler.run_all();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(network.stats().partition_dropped_packets, 1u);
  EXPECT_EQ(network.stats().zone_dropped_packets, 0u)
      << "the partition check runs first; drops attribute to one cause";
}

// The determinism contract: zone churn must not shift the seeded fault
// sequence. With uniform loss enabled, a run where a third host roams
// between zones consumes exactly the same RNG draws for alice->bob traffic
// as the oracle predicts — the zone check happens before any fault draw.
TEST(MobilityDeterminism, ZoneChecksConsumeNoRandomness) {
  constexpr std::uint64_t kSeed = 99;
  constexpr int kPackets = 200;
  constexpr double kLoss = 0.25;

  sim::Scheduler scheduler;
  LinkProfile profile;
  profile.udp_loss_rate = kLoss;
  Network network{scheduler, profile, kSeed};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
  Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));
  Host& roamer = network.add_host("roamer", IpAddress(10, 0, 0, 3));

  auto rx = bob.udp_socket(5000);
  std::vector<bool> arrived(kPackets, false);
  rx->set_receive_handler([&](const Datagram& d) {
    arrived[static_cast<std::size_t>(d.payload[0])] = true;
  });
  // The roamer flips zone every packet and is sent one out-of-range frame
  // per round: those drops must consume zero draws.
  auto roamer_rx = roamer.udp_socket(5000);
  roamer_rx->set_receive_handler([](const Datagram&) { FAIL(); });
  auto tx = alice.udp_socket(0);
  for (int i = 0; i < kPackets; ++i) {
    network.set_reachability_zone(roamer, 1 + (i % 2));
    tx->send_to(Endpoint{roamer.address(), 5000}, to_bytes("zoned-out"));
    tx->send_to(Endpoint{bob.address(), 5000},
                Bytes{static_cast<std::uint8_t>(i)});
  }
  scheduler.run_all();
  EXPECT_EQ(network.stats().zone_dropped_packets,
            static_cast<std::uint64_t>(kPackets));

  transport::Random oracle(kSeed);
  for (int i = 0; i < kPackets; ++i) {
    EXPECT_EQ(arrived[i], !oracle.chance(kLoss)) << "packet " << i;
  }
}

TEST(MobilityModelTest, ScriptedMovesFireAtTheProgrammedInstants) {
  sim::Scheduler scheduler;
  Network network{scheduler, LinkProfile{}, /*seed=*/1};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));
  Host& bob = network.add_host("bob", IpAddress(10, 0, 0, 2));
  std::unordered_map<std::string, Host*> hosts{{"alice", &alice},
                                               {"bob", &bob}};

  sim::MobilityModel roam([&](const std::string& node, int zone) {
    network.set_reachability_zone(*hosts.at(node), zone);
  });
  roam.add_node("alice", 0)
      .add_node("bob", 2)
      .move_at(sim::seconds(2), "bob", 0)
      .move_at(sim::seconds(5), "alice", 1);
  EXPECT_EQ(roam.size(), 2u);
  EXPECT_EQ(roam.node_count(), 2u);
  EXPECT_THROW(roam.move_at(sim::seconds(1), "nobody", 1),
               std::invalid_argument);
  EXPECT_THROW(roam.add_node("alice", 1), std::invalid_argument);

  roam.arm(scheduler);
  // Initial placement is synchronous at arm time.
  EXPECT_EQ(network.reachability_zone(bob), 2);
  EXPECT_TRUE(network.out_of_range(alice, bob));

  scheduler.run_for(sim::seconds(3));
  EXPECT_EQ(network.reachability_zone(bob), 0);
  EXPECT_FALSE(network.out_of_range(alice, bob));

  scheduler.run_for(sim::seconds(3));
  EXPECT_EQ(network.reachability_zone(alice), 1);
  EXPECT_EQ(roam.fired(), 2u);
  ASSERT_EQ(roam.log().size(), 2u);
  EXPECT_EQ(roam.log()[0], "bob -> zone 0");
  EXPECT_EQ(roam.log()[1], "alice -> zone 1");
}

TEST(MobilityModelTest, RandomWaypointsAreSeedDeterministicAndAlwaysMove) {
  auto timeline = [](std::uint64_t seed) {
    std::vector<std::string> labels;
    sim::Scheduler scheduler;
    sim::MobilityModel roam([](const std::string&, int) {});
    roam.add_node("a").add_node("b").add_node("c");
    sim::MobilityModel::WaypointProfile profile;
    profile.zone_count = 3;
    profile.dwell_min = sim::seconds(1);
    profile.dwell_max = sim::seconds(10);
    profile.horizon = sim::seconds(120);
    roam.random_waypoints(seed, profile);
    roam.arm(scheduler);
    scheduler.run_all();
    return roam.log();
  };
  auto a = timeline(7);
  EXPECT_EQ(a, timeline(7)) << "same seed must reproduce the same roaming";
  EXPECT_NE(a, timeline(8)) << "a different seed must vary the roaming";
  EXPECT_GT(a.size(), 10u) << "120s horizon / <=10s dwells: many waypoints";

  // Every generated hop changes zone (a same-zone "move" would silently
  // waste a waypoint and make dwell statistics lie).
  std::unordered_map<std::string, std::string> last_zone;
  for (const auto& label : a) {
    auto arrow = label.find(" -> ");
    ASSERT_NE(arrow, std::string::npos) << label;
    std::string node = label.substr(0, arrow);
    std::string zone = label.substr(arrow + 4);
    auto it = last_zone.find(node);
    if (it != last_zone.end()) EXPECT_NE(it->second, zone) << label;
    last_zone[node] = zone;
  }
}

TEST(MobilityModelTest, GenerationNeverTouchesTheNetworkRng) {
  // Generate a large waypoint timeline against a live network, then verify
  // the network's engine still produces the same sequence as a fresh oracle:
  // random_waypoints must draw only from its own engine.
  sim::Scheduler scheduler;
  Network network{scheduler, LinkProfile{}, /*seed=*/1234};
  Host& alice = network.add_host("alice", IpAddress(10, 0, 0, 1));

  sim::MobilityModel roam([&](const std::string&, int zone) {
    network.set_reachability_zone(alice, zone);
  });
  roam.add_node("alice");
  roam.random_waypoints(/*seed=*/5, {});
  ASSERT_GT(roam.size(), 0u);

  transport::Random oracle(1234);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(network.random().uniform_int(0, 1000),
              oracle.uniform_int(0, 1000));
  }
}

TEST(MobilityModelTest, WaypointGenerationValidatesItsProfile) {
  sim::MobilityModel roam([](const std::string&, int) {});
  roam.add_node("a");
  sim::MobilityModel::WaypointProfile bad;
  bad.zone_count = 1;
  EXPECT_THROW(roam.random_waypoints(1, bad), std::invalid_argument);
  bad.zone_count = 2;
  bad.dwell_min = sim::seconds(5);
  bad.dwell_max = sim::seconds(2);
  EXPECT_THROW(roam.random_waypoints(1, bad), std::invalid_argument);
  EXPECT_THROW(sim::MobilityModel(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace indiss::net
