// TranslationCache tests: hit/miss and the settle window, byte verification,
// negative entries, first-pass protection, LRU eviction, generation-based
// invalidation, and the end-to-end short-circuit — a storm of byte-identical
// SSDP alives through a gateway Indiss replays the bridged mDNS announcement
// without re-running the translation pipeline.
#include <gtest/gtest.h>

#include "core/indiss.hpp"
#include "core/translation_cache.hpp"
#include "mdns/dns.hpp"
#include "net/host.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "slp/agents.hpp"
#include "slp/wire.hpp"
#include "upnp/ssdp.hpp"

namespace indiss::core {
namespace {

Bytes wire_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

sim::SimTime at_ms(std::int64_t ms) { return sim::SimTime(sim::millis(ms)); }

struct CacheFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 3};
  net::Host& host = network.add_host("gw", net::IpAddress(10, 0, 0, 5));

  TranslationCache::Frame frame_to(std::shared_ptr<net::UdpSocket> socket,
                                   const net::Endpoint& to,
                                   std::string_view payload) {
    TranslationCache::Frame frame;
    frame.target = SdpId::kMdns;
    frame.socket = std::move(socket);
    frame.to = to;
    frame.payload = std::make_shared<const Bytes>(wire_bytes(payload));
    return frame;
  }
};

TEST_F(CacheFixture, MissThenHitAfterSettle) {
  TranslationCache cache({.max_entries = 8, .settle = sim::millis(200)});
  Bytes wire = wire_bytes("NOTIFY alive #1");

  EXPECT_EQ(cache.lookup(SdpId::kUpnp, wire, at_ms(0)), nullptr);
  EXPECT_EQ(cache.stats(SdpId::kUpnp).misses, 1u);

  cache.open_bundle(SdpId::kUpnp, wire, /*origin_session=*/7, at_ms(0));
  auto socket = host.udp_socket(0);
  cache.add_frame(SdpId::kUpnp, 7,
                  frame_to(socket, net::Endpoint{net::IpAddress(224, 0, 0, 251),
                                                 5353},
                           "composed mdns announce"));

  // Inside the settle window the bundle is not replayable yet.
  EXPECT_EQ(cache.lookup(SdpId::kUpnp, wire, at_ms(100)), nullptr);
  EXPECT_EQ(cache.stats(SdpId::kUpnp).misses, 2u);

  const auto* bundle = cache.lookup(SdpId::kUpnp, wire, at_ms(300));
  ASSERT_NE(bundle, nullptr);
  EXPECT_EQ(bundle->frames.size(), 1u);
  EXPECT_EQ(cache.stats(SdpId::kUpnp).hits, 1u);

  cache.replay(SdpId::kUpnp, *bundle);
  EXPECT_EQ(cache.stats(SdpId::kUpnp).frames_replayed, 1u);
}

TEST_F(CacheFixture, DifferentBytesOfSameSourceMiss) {
  TranslationCache cache({.max_entries = 8, .settle = sim::millis(0)});
  Bytes alive = wire_bytes("NOTIFY alive");
  cache.open_bundle(SdpId::kUpnp, alive, 1, at_ms(0));
  ASSERT_NE(cache.lookup(SdpId::kUpnp, alive, at_ms(1)), nullptr);
  // Same length, different bytes: must not collide.
  EXPECT_EQ(cache.lookup(SdpId::kUpnp, wire_bytes("NOTIFY ALIVE"), at_ms(1)),
            nullptr);
  // Same bytes, different source SDP: a distinct key.
  EXPECT_EQ(cache.lookup(SdpId::kSlp, alive, at_ms(1)), nullptr);
}

TEST_F(CacheFixture, EmptyBundleIsANegativeHit) {
  TranslationCache cache({.max_entries = 8, .settle = sim::millis(0)});
  Bytes wire = wire_bytes("advert nobody translated");
  cache.open_bundle(SdpId::kSlp, wire, 1, at_ms(0));
  const auto* bundle = cache.lookup(SdpId::kSlp, wire, at_ms(1));
  ASSERT_NE(bundle, nullptr);
  EXPECT_TRUE(bundle->frames.empty());
  cache.replay(SdpId::kSlp, *bundle);  // replaying silence is a no-op
  EXPECT_EQ(cache.stats(SdpId::kSlp).frames_replayed, 0u);
}

TEST_F(CacheFixture, ReopeningInsideGenerationKeepsFirstPassFrames) {
  TranslationCache cache({.max_entries = 8, .settle = sim::millis(0)});
  Bytes wire = wire_bytes("NOTIFY alive");
  auto socket = host.udp_socket(0);
  net::Endpoint to{net::IpAddress(224, 0, 0, 251), 5353};

  cache.open_bundle(SdpId::kUpnp, wire, 1, at_ms(0));
  cache.add_frame(SdpId::kUpnp, 1, frame_to(socket, to, "first"));

  // A repeat parsed before the settle deadline re-opens the same bundle; the
  // collected frame must survive and the second session must not duplicate.
  cache.open_bundle(SdpId::kUpnp, wire, 2, at_ms(1));
  cache.add_frame(SdpId::kUpnp, 2, frame_to(socket, to, "second"));

  const auto* bundle = cache.lookup(SdpId::kUpnp, wire, at_ms(10));
  ASSERT_NE(bundle, nullptr);
  ASSERT_EQ(bundle->frames.size(), 1u);
  EXPECT_EQ(to_string(*bundle->frames[0].payload), "first");
}

TEST_F(CacheFixture, GenerationBumpInvalidatesAndRecyclesSlots) {
  TranslationCache cache({.max_entries = 8, .settle = sim::millis(0)});
  Bytes wire = wire_bytes("NOTIFY alive");
  auto socket = host.udp_socket(0);
  net::Endpoint to{net::IpAddress(224, 0, 0, 251), 5353};

  cache.open_bundle(SdpId::kUpnp, wire, 1, at_ms(0));
  cache.add_frame(SdpId::kUpnp, 1, frame_to(socket, to, "old world"));
  ASSERT_NE(cache.lookup(SdpId::kUpnp, wire, at_ms(1)), nullptr);

  cache.bump_generation();  // e.g. a byebye or unit attach/detach
  EXPECT_EQ(cache.lookup(SdpId::kUpnp, wire, at_ms(2)), nullptr);
  // Late frames tagged for the stale bundle must not land.
  cache.add_frame(SdpId::kUpnp, 1, frame_to(socket, to, "stale straggler"));

  // Re-translation under the new generation starts a fresh bundle in place.
  cache.open_bundle(SdpId::kUpnp, wire, 9, at_ms(3));
  cache.add_frame(SdpId::kUpnp, 9, frame_to(socket, to, "new world"));
  const auto* bundle = cache.lookup(SdpId::kUpnp, wire, at_ms(4));
  ASSERT_NE(bundle, nullptr);
  ASSERT_EQ(bundle->frames.size(), 1u);
  EXPECT_EQ(to_string(*bundle->frames[0].payload), "new world");
}

TEST_F(CacheFixture, LruEvictionDropsTheColdestBundle) {
  TranslationCache cache({.max_entries = 2, .settle = sim::millis(0)});
  Bytes a = wire_bytes("advert A");
  Bytes b = wire_bytes("advert B");
  Bytes c = wire_bytes("advert C");

  cache.open_bundle(SdpId::kUpnp, a, 1, at_ms(0));
  cache.open_bundle(SdpId::kUpnp, b, 2, at_ms(0));
  ASSERT_EQ(cache.size(), 2u);

  // Touch A so B becomes the LRU victim.
  ASSERT_NE(cache.lookup(SdpId::kUpnp, a, at_ms(1)), nullptr);
  cache.open_bundle(SdpId::kUpnp, c, 3, at_ms(2));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.lookup(SdpId::kUpnp, a, at_ms(3)), nullptr);
  EXPECT_NE(cache.lookup(SdpId::kUpnp, c, at_ms(3)), nullptr);
  EXPECT_EQ(cache.lookup(SdpId::kUpnp, b, at_ms(3)), nullptr);
}

TEST_F(CacheFixture, OverflowingTheOpenRingDropsTheBundleNotJustTheSession) {
  TranslationCache cache({.max_entries = 256, .settle = sim::millis(0)});
  Bytes first = wire_bytes("advert 0");
  cache.open_bundle(SdpId::kUpnp, first, 0, at_ms(0));
  // 64 more bundles in the same instant overflow the open-session ring and
  // evict session 0 before its frame could land.
  for (int i = 1; i <= 64; ++i) {
    cache.open_bundle(SdpId::kUpnp, wire_bytes("advert " + std::to_string(i)),
                      static_cast<std::uint64_t>(i), at_ms(0));
  }
  auto socket = host.udp_socket(0);
  cache.add_frame(SdpId::kUpnp, 0,
                  frame_to(socket, net::Endpoint{net::IpAddress(224, 0, 0, 251),
                                                 5353},
                           "late frame"));
  // The half-built bundle must be gone (a plain miss that re-translates),
  // not left behind as an empty negative entry that would silently swallow
  // every future repeat of advert 0.
  EXPECT_EQ(cache.lookup(SdpId::kUpnp, first, at_ms(1)), nullptr);
}

TEST_F(CacheFixture, SustainedMissCyclesAfterGenerationBumpRecover) {
  // Regression: open sessions used to be retired only by the 64-slot
  // overflow, which erases the session's cache entry with it. One full-miss
  // re-translation cycle after a generation bump then pushed fleet-many new
  // sessions on top of the fleet-many stale ones, wrapped the ring, and the
  // overflow erased the freshly re-opened *live* bundles — whose repeats
  // missed and pushed again: permanent cache collapse for any fleet with
  // more than 32 distinct wires. Settled/stale sessions are pruned instead.
  TranslationCache cache({.max_entries = 256, .settle = sim::millis(200)});
  const int kWires = 40;
  std::uint64_t session = 0;
  auto cycle = [&](std::int64_t t_ms) {
    int hits = 0;
    for (int i = 0; i < kWires; ++i) {
      Bytes wire = wire_bytes("advert " + std::to_string(i));
      if (cache.lookup(SdpId::kUpnp, wire, at_ms(t_ms)) != nullptr) {
        ++hits;
      } else {
        cache.open_bundle(SdpId::kUpnp, wire, ++session, at_ms(t_ms));
      }
    }
    return hits;
  };

  EXPECT_EQ(cycle(0), 0);           // cold: every wire translates
  EXPECT_EQ(cycle(30000), kWires);  // steady state: every wire replays

  cache.bump_generation();  // e.g. a newly learned Jini registrar
  EXPECT_EQ(cycle(60000), 0);  // one full re-translation cycle, by design
  EXPECT_EQ(cycle(90000), kWires);   // ...and the cache must recover
  EXPECT_EQ(cycle(120000), kWires);  // ...permanently
}

TEST_F(CacheFixture, FleetLargerThanTheSessionRingStillCaches) {
  // 70 distinct advertisements in one scheduler instant overflow the
  // 64-slot open-session ring, erasing the first 6 half-built bundles (by
  // design, see OverflowingTheOpenRingDropsTheBundleNotJustTheSession).
  // Those 6 re-translate on the next period — and the erase-by-key must not
  // domino through the 64 live bundles, which used to leave a 65+-wire
  // fleet permanently uncached.
  TranslationCache cache({.max_entries = 256, .settle = sim::millis(200)});
  const int kWires = 70;
  std::uint64_t session = 0;
  auto cycle = [&](std::int64_t t_ms) {
    int hits = 0;
    for (int i = 0; i < kWires; ++i) {
      Bytes wire = wire_bytes("advert " + std::to_string(i));
      if (cache.lookup(SdpId::kUpnp, wire, at_ms(t_ms)) != nullptr) {
        ++hits;
      } else {
        cache.open_bundle(SdpId::kUpnp, wire, ++session, at_ms(t_ms));
      }
    }
    return hits;
  };

  EXPECT_EQ(cycle(0), 0);
  EXPECT_EQ(cycle(30000), kWires - 6);  // the 6 overflow victims re-open
  EXPECT_EQ(cycle(60000), kWires);      // whole fleet cached
  EXPECT_EQ(cycle(90000), kWires);
}

TEST_F(CacheFixture, AddFrameWithoutOpenBundleIsANoOp) {
  TranslationCache cache;
  auto socket = host.udp_socket(0);
  cache.add_frame(SdpId::kUpnp, 42,
                  frame_to(socket, net::Endpoint{net::IpAddress(224, 0, 0, 1),
                                                 1},
                           "orphan"));
  EXPECT_EQ(cache.size(), 0u);
}

// --- End-to-end: the announcement-storm short-circuit -----------------------

TEST(TranslationCacheEndToEnd, RepeatedRegistrationShortCircuitsAndReplays) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 11};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));
  net::Host& observer = network.add_host("obs", net::IpAddress(10, 0, 0, 8));

  IndissConfig config;
  config.enabled_sdps.insert(SdpId::kMdns);
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  // A native Bonjour listener counts the bridged announcements.
  auto mdns_listener = observer.udp_socket(5353);
  mdns_listener->join_group(net::IpAddress(224, 0, 0, 251));
  std::size_t bridged_announcements = 0;
  mdns_listener->set_receive_handler([&](const net::Datagram& d) {
    std::string error;
    auto message = mdns::decode(d.payload, &error);
    if (message.has_value() && message->is_response()) {
      bridged_announcements += 1;
    }
  });

  // The same SLP service re-registers with byte-identical SrvRegs (the SLP
  // re-advert class of periodic traffic).
  slp::SrvReg reg;
  reg.url_entry = {300, "service:clock:soap://10.0.0.2:4005/slp-clock"};
  reg.service_type = "service:clock";
  reg.attr_list = "(friendlyName=Storm Clock)";
  Bytes wire = slp::encode(slp::Message(reg));

  auto announcer = service.udp_socket(0);
  const int kPeriods = 6;
  for (int i = 0; i < kPeriods; ++i) {
    announcer->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                       wire);
    scheduler.run_for(sim::seconds(30));
  }

  const auto stats = indiss.monitor().translation_stats(SdpId::kSlp);
  EXPECT_GE(stats.hits, static_cast<std::uint64_t>(kPeriods - 2))
      << "every settled repeat must short-circuit";
  EXPECT_GE(stats.frames_replayed, stats.hits)
      << "each hit replays the bridged mDNS announcement";
  EXPECT_GE(bridged_announcements, static_cast<std::size_t>(kPeriods - 1))
      << "the bridge must keep re-announcing on replay, not just on first "
         "translation";
  EXPECT_EQ(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->stats().cache_short_circuits, 0u);
  EXPECT_GE(indiss.unit(SdpId::kSlp)->stats().cache_short_circuits,
            static_cast<std::uint64_t>(kPeriods - 2));
  // The mDNS unit translated the registration exactly once; replays bypassed
  // it entirely.
  EXPECT_EQ(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->stats().messages_composed, 0u);
  EXPECT_EQ(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->announcements_sent(), 1u);
}

// Byebyes must never be served from the cache: a second, byte-identical
// withdrawal (after a re-announcement) still has to run every per-unit
// state change, not just replay old goodbye frames.
TEST(TranslationCacheEndToEnd, RepeatedWithdrawalAlwaysRunsStateChanges) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 13};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));

  IndissConfig config;
  config.enabled_sdps.insert(SdpId::kMdns);
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  slp::SrvReg reg;
  reg.url_entry = {300, "service:clock:soap://10.0.0.2:4005/flap-clock"};
  reg.service_type = "service:clock";
  Bytes reg_wire = slp::encode(slp::Message(reg));
  slp::SrvDeReg dereg;
  dereg.url_entry = {0, "service:clock:soap://10.0.0.2:4005/flap-clock"};
  Bytes dereg_wire = slp::encode(slp::Message(dereg));

  auto announcer = service.udp_socket(0);
  net::Endpoint group{slp::kSlpMulticastGroup, slp::kSlpPort};
  for (int flap = 0; flap < 2; ++flap) {
    announcer->send_to(group, reg_wire);
    scheduler.run_for(sim::seconds(30));
    EXPECT_EQ(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->foreign_services().size(), 1u)
        << "flap " << flap << ": announcement must register";
    announcer->send_to(group, dereg_wire);
    scheduler.run_for(sim::seconds(30));
    EXPECT_TRUE(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->foreign_services().empty())
        << "flap " << flap
        << ": a (repeated) byebye must always run the withdrawal";
  }
  // Two announcements + two goodbyes crossed the mDNS wire.
  EXPECT_EQ(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->announcements_sent(), 4u);
}

// After a generation bump forces a re-parse of an already-bridged alive,
// the deduplicated pass must still hand its composed frame to the fresh
// bundle, so later replays keep re-announcing (refresh keeps Bonjour
// caches alive) instead of settling into permanent silence.
TEST(TranslationCacheEndToEnd, RefreshSurvivesGenerationBump) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 13};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));
  net::Host& observer = network.add_host("obs", net::IpAddress(10, 0, 0, 8));

  IndissConfig config;
  config.enabled_sdps.insert(SdpId::kMdns);
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  auto mdns_listener = observer.udp_socket(5353);
  mdns_listener->join_group(net::IpAddress(224, 0, 0, 251));
  std::size_t bridged = 0;
  mdns_listener->set_receive_handler([&](const net::Datagram& d) {
    auto message = mdns::decode(d.payload);
    if (message.has_value() && message->is_response()) bridged += 1;
  });

  slp::SrvReg reg;
  reg.url_entry = {300, "service:clock:soap://10.0.0.2:4005/steady-clock"};
  reg.service_type = "service:clock";
  Bytes wire = slp::encode(slp::Message(reg));
  auto announcer = service.udp_socket(0);
  net::Endpoint group{slp::kSlpMulticastGroup, slp::kSlpPort};

  for (int i = 0; i < 3; ++i) {
    announcer->send_to(group, wire);
    scheduler.run_for(sim::seconds(30));
  }
  EXPECT_EQ(bridged, 3u);  // first translation + two replays

  // Any invalidation (a byebye elsewhere, attach/detach, ...).
  ASSERT_NE(indiss.translation_cache(), nullptr);
  indiss.translation_cache()->bump_generation();

  for (int i = 0; i < 3; ++i) {
    announcer->send_to(group, wire);
    scheduler.run_for(sim::seconds(30));
  }
  // The post-bump re-parse deduplicates (no wire send) but refills the
  // bundle; the two repeats after it replay again.
  EXPECT_EQ(bridged, 5u);
}

// A misbehaving device defeats the cache on purpose: every datagram varies
// by a byte, so none ever repeats — each is a miss that costs a parse. The
// defense is that only frames which *parse to an advertisement* ever open a
// bundle (unit.cpp), so garbage creates no entries: the cache cannot be
// grown, the legit advert cannot be evicted, and replays resume unharmed
// once the flood stops.
TEST(TranslationCacheEndToEnd, ByteVaryingMalformedFloodCannotGrowOrPoisonTheCache) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 17};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));
  net::Host& flooder = network.add_host("bad", net::IpAddress(10, 0, 0, 66));

  IndissConfig config;
  config.enabled_sdps.insert(SdpId::kMdns);
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  slp::SrvReg reg;
  reg.url_entry = {300, "service:clock:soap://10.0.0.2:4005/steady-clock"};
  reg.service_type = "service:clock";
  Bytes wire = slp::encode(slp::Message(reg));
  auto announcer = service.udp_socket(0);
  net::Endpoint group{slp::kSlpMulticastGroup, slp::kSlpPort};

  // Steady state first: the legit advert caches and replays.
  for (int i = 0; i < 3; ++i) {
    announcer->send_to(group, wire);
    scheduler.run_for(sim::seconds(30));
  }
  ASSERT_GE(indiss.monitor().translation_stats(SdpId::kSlp).hits, 2u);

  // The flood: 600 distinct malformed datagrams — far more than the cache
  // holds — interleaved with the legit advert's periods.
  std::size_t entries_before_flood = indiss.translation_cache()->size();
  auto flood_socket = flooder.udp_socket(0);
  for (int i = 0; i < 600; ++i) {
    flood_socket->send_to(group, to_bytes("malformed-" + std::to_string(i)));
    if (i % 100 == 99) {
      announcer->send_to(group, wire);
      scheduler.run_for(sim::seconds(30));
    } else {
      scheduler.run_for(sim::millis(5));
    }
  }

  ASSERT_NE(indiss.translation_cache(), nullptr);
  EXPECT_EQ(indiss.translation_cache()->size(), entries_before_flood)
      << "garbage frames must not open cache bundles";
  EXPECT_EQ(indiss.translation_cache()->evictions(), 0u)
      << "the flood must not churn the legit advert out of the cache";

  // Replays resume unharmed: every post-flood repeat is still a hit.
  std::uint64_t hits_before =
      indiss.monitor().translation_stats(SdpId::kSlp).hits;
  for (int i = 0; i < 3; ++i) {
    announcer->send_to(group, wire);
    scheduler.run_for(sim::seconds(30));
  }
  EXPECT_EQ(indiss.monitor().translation_stats(SdpId::kSlp).hits,
            hits_before + 3)
      << "the storm must not poison the legit advert";
  // And the bridged state survived the whole ordeal.
  EXPECT_EQ(indiss.unit_as<MdnsUnit>(SdpId::kMdns)->foreign_services().size(),
            1u);
}

}  // namespace
}  // namespace indiss::core
