// Tests for the EventBus: subscription lifecycle, fan-out, filtering, reply
// routing, and the detach semantics dynamic composition relies on.
#include <gtest/gtest.h>

#include <memory>

#include "core/event_bus.hpp"
#include "core/unit.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace indiss::core {
namespace {

// A concrete unit with no FSM transitions: delivered streams open sessions
// and count events, which is all the bus tests need to observe.
struct StubUnit : Unit {
  StubUnit(SdpId sdp, net::Host& host) : Unit(sdp, host) {}

  Session& open_peer_session() { return open_session(Session::Origin::kPeer); }

 protected:
  void compose_native_request(Session&) override {}
  void compose_native_reply(Session&) override {}
};

struct EventBusFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 1};
  net::Host& host = network.add_host("h", net::IpAddress(10, 0, 0, 1));
  // The bus must outlive its subscribers (unit destructors unsubscribe
  // themselves), so it is declared before the units.
  EventBus bus;
  StubUnit slp{SdpId::kSlp, host};
  StubUnit upnp{SdpId::kUpnp, host};
  StubUnit jini{SdpId::kJini, host};

  static SharedStream request_stream() {
    auto stream = std::make_shared<EventStream>();
    stream->push_back(Event(EventType::kControlStart));
    stream->push_back(Event(EventType::kServiceRequest));
    stream->push_back(Event(EventType::kControlStop));
    return stream;
  }
};

TEST_F(EventBusFixture, SubscribeBindsAndUnsubscribeUnbinds) {
  EXPECT_EQ(slp.bus(), nullptr);
  bus.subscribe(slp);
  bus.subscribe(upnp);
  EXPECT_EQ(bus.subscriber_count(), 2u);
  EXPECT_EQ(slp.bus(), &bus);
  EXPECT_EQ(bus.subscriber(SdpId::kSlp), &slp);
  EXPECT_TRUE(bus.subscribed(SdpId::kUpnp));
  EXPECT_FALSE(bus.subscribed(SdpId::kJini));

  bus.subscribe(slp);  // idempotent
  EXPECT_EQ(bus.subscriber_count(), 2u);

  bus.unsubscribe(slp);
  EXPECT_EQ(bus.subscriber_count(), 1u);
  EXPECT_EQ(slp.bus(), nullptr);
  EXPECT_EQ(bus.subscriber(SdpId::kSlp), nullptr);
}

TEST_F(EventBusFixture, PublishFansOutToEverySubscriberExceptOrigin) {
  bus.subscribe(slp);
  bus.subscribe(upnp);
  bus.subscribe(jini);

  bus.publish(slp, 1, request_stream());
  scheduler.run_for(sim::millis(1));

  EXPECT_EQ(slp.stats().sessions_opened, 0u) << "no self-delivery";
  EXPECT_EQ(upnp.stats().sessions_opened, 1u);
  EXPECT_EQ(jini.stats().sessions_opened, 1u);
  EXPECT_EQ(bus.stats().streams_published, 1u);
  EXPECT_EQ(bus.stats().deliveries, 2u);

  // The delivered streams ran through each receiver's FSM-less session.
  EXPECT_EQ(upnp.stats().events_emitted, 3u);
}

TEST_F(EventBusFixture, FilterSkipsSubscribersThatDecline) {
  bus.subscribe(slp);
  bus.subscribe(upnp);
  // Jini only wants streams that carry a service request.
  bus.subscribe(jini, [](const EventStream& stream) {
    return find_event(stream, EventType::kServiceRequest) != nullptr;
  });

  auto advert = std::make_shared<EventStream>();
  advert->push_back(Event(EventType::kControlStart));
  advert->push_back(Event(EventType::kServiceAlive));
  advert->push_back(Event(EventType::kControlStop));

  bus.publish(slp, 1, advert);
  scheduler.run_for(sim::millis(1));
  EXPECT_EQ(upnp.stats().sessions_opened, 1u);
  EXPECT_EQ(jini.stats().sessions_opened, 0u) << "filter must skip jini";
  EXPECT_EQ(bus.stats().filtered, 1u);

  bus.publish(slp, 2, request_stream());
  scheduler.run_for(sim::millis(1));
  EXPECT_EQ(jini.stats().sessions_opened, 1u) << "requests pass the filter";
}

TEST_F(EventBusFixture, ReplyRoutesBackToTheOriginSession) {
  bus.subscribe(slp);
  bus.subscribe(upnp);
  Session& session = slp.open_peer_session();

  auto reply = request_stream();
  bus.reply(SdpId::kSlp, session.id, reply);
  scheduler.run_for(sim::millis(1));

  EXPECT_EQ(bus.stats().replies_routed, 1u);
  EXPECT_EQ(slp.stats().events_emitted, 3u) << "reply fed into the session";
  EXPECT_EQ(slp.stats().sessions_opened, 1u) << "no new session for a reply";
}

TEST_F(EventBusFixture, ReplyToDetachedOriginIsDroppedNotCrashed) {
  bus.subscribe(slp);
  bus.subscribe(upnp);
  bus.unsubscribe(slp);

  bus.reply(SdpId::kSlp, 1, request_stream());
  scheduler.run_for(sim::millis(1));
  EXPECT_EQ(bus.stats().replies_dropped, 1u);
  EXPECT_EQ(bus.stats().replies_routed, 0u);
  EXPECT_EQ(slp.stats().events_emitted, 0u);
}

TEST_F(EventBusFixture, ReplacingASubscriptionUnbindsTheOldUnit) {
  StubUnit replacement{SdpId::kJini, host};
  bus.subscribe(jini);
  bus.subscribe(replacement);
  EXPECT_EQ(bus.subscriber_count(), 1u);
  EXPECT_EQ(bus.subscriber(SdpId::kJini), &replacement);
  EXPECT_EQ(jini.bus(), nullptr) << "displaced unit must not keep the bus";
  EXPECT_EQ(replacement.bus(), &bus);
}

TEST_F(EventBusFixture, DestroyedUnitLeavesNoDanglingSubscription) {
  {
    StubUnit transient{SdpId::kJini, host};
    bus.subscribe(transient);
    EXPECT_EQ(bus.subscriber_count(), 1u);
  }  // ~Unit unsubscribes
  EXPECT_EQ(bus.subscriber_count(), 0u);
  EXPECT_EQ(bus.subscriber(SdpId::kJini), nullptr);

  // Publishing afterwards reaches nobody and breaks nothing.
  bus.subscribe(slp);
  bus.publish(slp, 1, request_stream());
  scheduler.run_for(sim::millis(1));
  EXPECT_EQ(bus.stats().deliveries, 0u);
}

}  // namespace
}  // namespace indiss::core
