// Tests for the SDP event parsers: the paper's Fig 4 event sequences.
#include <gtest/gtest.h>

#include "core/units/jini_unit.hpp"
#include "core/units/slp_unit.hpp"
#include "core/units/upnp_unit.hpp"
#include "jini/discovery.hpp"
#include "slp/wire.hpp"
#include "upnp/description.hpp"
#include "upnp/ssdp.hpp"

namespace indiss::core {
namespace {

MessageContext multicast_ctx() {
  MessageContext ctx;
  ctx.source = net::Endpoint{net::IpAddress(10, 0, 0, 1), 41000};
  ctx.destination = net::Endpoint{net::IpAddress(239, 255, 255, 253), 427};
  ctx.multicast = true;
  return ctx;
}

bool has_event(const EventStream& s, EventType t) {
  return find_event(s, t) != nullptr;
}

TEST(SlpParser, SrvRqstProducesFig4Events) {
  slp::SrvRqst request;
  request.header.xid = 42;
  request.service_type = "service:clock";
  request.predicate = "(friendlyName=Clock*)";
  request.scope_list = "DEFAULT";

  SlpEventParser parser;
  CollectingSink sink;
  parser.parse(slp::encode(slp::Message(request)), multicast_ctx(), sink);
  const EventStream& s = sink.stream();

  // "The event stream always starts with SDP_C_START and ends with
  //  SDP_C_STOP" (paper §2.4).
  EXPECT_TRUE(well_framed(s));
  EXPECT_TRUE(has_event(s, EventType::kNetMulticast));
  EXPECT_TRUE(has_event(s, EventType::kNetSourceAddr));
  EXPECT_TRUE(has_event(s, EventType::kServiceRequest));
  // SLP-specific events of Fig 4.
  EXPECT_TRUE(has_event(s, EventType::kSlpReqVersion));
  EXPECT_TRUE(has_event(s, EventType::kSlpReqScope));
  EXPECT_TRUE(has_event(s, EventType::kSlpReqPredicate));
  EXPECT_TRUE(has_event(s, EventType::kSlpReqId));
  EXPECT_EQ(find_event(s, EventType::kSlpReqId)->get("xid"), "42");
  EXPECT_EQ(find_event(s, EventType::kServiceTypeIs)->get("type"), "clock");
}

TEST(SlpParser, SrvRplyCarriesUrlsAndTtls) {
  slp::SrvRply reply;
  reply.header.xid = 42;
  reply.url_entries = {
      slp::UrlEntry{300, "service:clock:soap://10.0.0.2:4005/control"}};
  SlpEventParser parser;
  CollectingSink sink;
  auto ctx = multicast_ctx();
  ctx.multicast = false;
  parser.parse(slp::encode(slp::Message(reply)), ctx, sink);
  const EventStream& s = sink.stream();
  EXPECT_TRUE(has_event(s, EventType::kServiceResponse));
  EXPECT_TRUE(has_event(s, EventType::kResOk));
  EXPECT_EQ(find_event(s, EventType::kResServUrl)->get("url"),
            "soap://10.0.0.2:4005/control");
  EXPECT_EQ(find_event(s, EventType::kResTtl)->get("seconds"), "300");
}

TEST(SlpParser, MalformedInputYieldsErrorEventNotCrash) {
  SlpEventParser parser;
  CollectingSink sink;
  Bytes garbage{0xFF, 0x00, 0x01};
  parser.parse(garbage, multicast_ctx(), sink);
  EXPECT_TRUE(well_framed(sink.stream()));
  EXPECT_TRUE(has_event(sink.stream(), EventType::kResErr));
}

TEST(SlpParser, SrvRegBecomesRegistrationEvents) {
  slp::SrvReg reg;
  reg.service_type = "service:clock";
  reg.url_entry = slp::UrlEntry{120, "service:clock:soap://10.0.0.2:4005/c"};
  reg.attr_list = "(friendlyName=Clock)";
  SlpEventParser parser;
  CollectingSink sink;
  parser.parse(slp::encode(slp::Message(reg)), multicast_ctx(), sink);
  EXPECT_TRUE(has_event(sink.stream(), EventType::kRegRegister));
  EXPECT_TRUE(has_event(sink.stream(), EventType::kServiceAttr));
}

TEST(SsdpParser, MSearchProducesRequestEvents) {
  upnp::SearchRequest request;
  request.st = "urn:schemas-upnp-org:device:clock:1";
  SsdpEventParser parser;
  CollectingSink sink;
  auto ctx = multicast_ctx();
  parser.parse(to_bytes(request.to_http().serialize()), ctx, sink);
  const EventStream& s = sink.stream();
  EXPECT_TRUE(well_framed(s));
  EXPECT_TRUE(has_event(s, EventType::kServiceRequest));
  EXPECT_EQ(find_event(s, EventType::kServiceTypeIs)->get("type"), "clock");
  EXPECT_EQ(find_event(s, EventType::kUpnpSearchTarget)->get("st"),
            request.st);
}

TEST(SsdpParser, SearchResponseLacksServUrlButHasDescriptionUrl) {
  // The pivotal §2.4 property: a UPnP search answer does NOT contain the
  // service URL, only the description LOCATION; INDISS must chase it.
  upnp::SearchResponse response;
  response.st = "urn:schemas-upnp-org:device:clock:1";
  response.usn = "uuid:ClockDevice::upnp:clock";
  response.location = "http://128.93.8.112:4004/description.xml";
  SsdpEventParser parser;
  CollectingSink sink;
  MessageContext ctx;
  parser.parse(to_bytes(response.to_http().serialize()), ctx, sink);
  const EventStream& s = sink.stream();
  EXPECT_FALSE(has_event(s, EventType::kResServUrl));
  EXPECT_EQ(find_event(s, EventType::kUpnpDeviceUrlDesc)->get("url"),
            response.location);
  EXPECT_TRUE(has_event(s, EventType::kServiceResponse));
}

TEST(SsdpParser, HttpDescriptionResponseEmitsParserSwitch) {
  auto description = upnp::make_clock_device();
  auto http = http::HttpMessage::response(200, "OK");
  http.headers.set("CONTENT-TYPE", "text/xml");
  http.body = description.to_xml();

  SsdpEventParser parser;
  CollectingSink sink;
  MessageContext ctx;
  parser.parse(to_bytes(http.serialize()), ctx, sink);
  const EventStream& s = sink.stream();
  const Event* sw = find_event(s, EventType::kControlParserSwitch);
  ASSERT_NE(sw, nullptr);
  EXPECT_EQ(sw->get("parser"), "upnp-xml");
  EXPECT_EQ(sw->get("payload"), http.body);
  // The SSDP parser stops at the switch; SDP_C_STOP comes from the XML
  // parser continuation.
  EXPECT_NE(s.back().type, EventType::kControlStop);
}

TEST(DescriptionParser, EmitsAttrsTypeAndControlUrl) {
  auto description = upnp::make_clock_device();
  UpnpDescriptionParser parser;
  CollectingSink sink;
  MessageContext ctx;
  ctx.continuation = true;
  parser.parse(to_bytes(description.to_xml()), ctx, sink);
  const EventStream& s = sink.stream();
  EXPECT_EQ(s.back().type, EventType::kControlStop);
  EXPECT_EQ(find_event(s, EventType::kResServUrl)->get("url"),
            "/service/timer/control");
  EXPECT_EQ(find_event(s, EventType::kServiceTypeIs)->get("type"), "clock");
  bool friendly = false;
  for (const auto& e : s) {
    if (e.type == EventType::kServiceAttr &&
        e.get("key") == "friendlyName") {
      friendly = e.get("value") == "CyberGarage Clock Device";
    }
  }
  EXPECT_TRUE(friendly);
}

TEST(DescriptionParser, BadXmlYieldsError) {
  UpnpDescriptionParser parser;
  CollectingSink sink;
  MessageContext ctx;
  ctx.continuation = true;
  parser.parse(to_bytes("<broken"), ctx, sink);
  EXPECT_TRUE(has_event(sink.stream(), EventType::kResErr));
  EXPECT_EQ(sink.stream().back().type, EventType::kControlStop);
}

TEST(JiniParser, AnnouncementYieldsRepositoryEvent) {
  jini::MulticastAnnouncement announcement;
  announcement.registrar_host = "10.0.0.9";
  announcement.registrar_port = 4160;
  announcement.registrar_id = 77;
  JiniEventParser parser;
  CollectingSink sink;
  parser.parse(announcement.encode(), multicast_ctx(), sink);
  const EventStream& s = sink.stream();
  EXPECT_TRUE(well_framed(s));
  const Event* repo = find_event(s, EventType::kDiscRepositoryFound);
  ASSERT_NE(repo, nullptr);
  EXPECT_EQ(repo->get("host"), "10.0.0.9");
  EXPECT_EQ(repo->get("id"), "77");
}

TEST(JiniParser, RequestYieldsRepoQueryEvent) {
  jini::MulticastRequest request;
  request.response_port = 45000;
  JiniEventParser parser;
  CollectingSink sink;
  parser.parse(request.encode(), multicast_ctx(), sink);
  EXPECT_TRUE(
      has_event(sink.stream(), EventType::kDiscRepositoryQuery));
}

// Property: every parser frames correctly on arbitrary junk input.
class JunkInput : public ::testing::TestWithParam<int> {};

TEST_P(JunkInput, AllParsersStayWellFramedOnJunk) {
  Bytes junk;
  unsigned seed = static_cast<unsigned>(GetParam());
  for (int i = 0; i < 64; ++i) {
    seed = seed * 1103515245 + 12345;
    junk.push_back(static_cast<std::uint8_t>(seed >> 16));
  }
  for (auto make : {+[]() -> SdpParser* { return new SlpEventParser; },
                    +[]() -> SdpParser* { return new SsdpEventParser; },
                    +[]() -> SdpParser* { return new JiniEventParser; }}) {
    std::unique_ptr<SdpParser> parser(make());
    CollectingSink sink;
    parser->parse(junk, multicast_ctx(), sink);
    EXPECT_TRUE(well_framed(sink.stream())) << parser->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JunkInput, ::testing::Range(1, 21));

}  // namespace
}  // namespace indiss::core
