// ServiceDirectory tests (docs/directory.md): record/collect keying, the
// never-serve-stale collect guard, withdraw tombstones (by URL and by USN),
// generation-bump invalidation, LRU eviction, the wire-hash touch() refresh,
// and the answer cache's replay + epoch-invalidation contract — then the
// end-to-end legs: the idle-unit bridged-state expiry regression (timer
// sweep, not sweep-on-touch), the SLP-browse-answered-from-mDNS-announcement
// path with byebye tombstoning, the repeated-browse storm that must be
// answered from the index with zero origin-network frames, and the SLP
// DAAdvert the gateway multicasts when directory mode turns on.
#include <gtest/gtest.h>

#include <string>
#include <variant>
#include <vector>

#include "core/directory/service_directory.hpp"
#include "core/indiss.hpp"
#include "mdns/dns.hpp"
#include "mdns/dnssd.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "net/udp.hpp"
#include "sim/scheduler.hpp"
#include "slp/agents.hpp"
#include "slp/wire.hpp"

namespace indiss::core {
namespace {

sim::SimTime at_s(std::int64_t s) { return sim::SimTime(sim::seconds(s)); }

Bytes wire_bytes(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

/// A parsed advertisement stream as the units hand it to the directory:
/// alive + type + TTL + URL (+ optional USN and attributes).
EventStream advert_stream(
    std::string_view type, std::string_view url, long ttl_seconds = 0,
    std::string_view usn = "",
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        attrs = {}) {
  EventStream stream;
  stream.push_back(Event(EventType::kControlStart));
  stream.push_back(Event(EventType::kServiceAlive));
  stream.push_back(Event(EventType::kServiceTypeIs, {{"type", type}}));
  if (ttl_seconds > 0) {
    stream.push_back(Event(EventType::kResTtl,
                           {{"seconds", std::to_string(ttl_seconds)}}));
  }
  if (!usn.empty()) {
    stream.push_back(Event(EventType::kUpnpUsn, {{"usn", usn}}));
  }
  for (const auto& [key, value] : attrs) {
    stream.push_back(
        Event(EventType::kServiceAttr, {{"key", key}, {"value", value}}));
  }
  stream.push_back(Event(EventType::kResServUrl, {{"url", url}}));
  stream.push_back(Event(EventType::kControlStop));
  return stream;
}

/// A byebye stream: URL-identified (SLP/mDNS shape) or USN-only (UPnP shape).
EventStream byebye_stream(std::string_view url, std::string_view usn = "") {
  EventStream stream;
  stream.push_back(Event(EventType::kControlStart));
  stream.push_back(Event(EventType::kServiceByeBye));
  if (!url.empty()) {
    stream.push_back(Event(EventType::kResServUrl, {{"url", url}}));
  }
  if (!usn.empty()) {
    stream.push_back(Event(EventType::kUpnpUsn, {{"usn", usn}}));
  }
  stream.push_back(Event(EventType::kControlStop));
  return stream;
}

TEST(ServiceDirectory, RecordsCollectAndFindByCanonicalType) {
  ServiceDirectory dir;
  EXPECT_TRUE(dir.record_advertisement(
      SdpId::kMdns, advert_stream("clock", "service:clock://a", 120), {},
      at_s(0)));
  EXPECT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://b", 120), {},
      at_s(0)));
  EXPECT_TRUE(dir.record_advertisement(
      SdpId::kUpnp, advert_stream("printer", "http://printer/desc", 120), {},
      at_s(0)));
  EXPECT_EQ(dir.size(), 3u);
  EXPECT_EQ(dir.stats(SdpId::kMdns).records_stored, 1u);
  EXPECT_EQ(dir.stats(SdpId::kSlp).records_stored, 1u);

  std::vector<const ServiceDirectory::Record*> matches;
  EXPECT_EQ(dir.collect("clock", at_s(1), matches), 2u);
  EXPECT_EQ(dir.collect("printer", at_s(1), matches), 1u);
  EXPECT_EQ(dir.collect("camera", at_s(1), matches), 0u);
  EXPECT_TRUE(dir.has_fresh("clock", at_s(1)));
  EXPECT_FALSE(dir.has_fresh("camera", at_s(1)));

  const auto* record = dir.find("service:clock://a");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->origin, SdpId::kMdns);
  EXPECT_EQ(SymbolTable::global().name(record->canonical_type), "clock");
}

TEST(ServiceDirectory, AdvertWithoutUrlOrMeaningfulTypeIsNotRecorded) {
  ServiceDirectory dir;
  // Wildcard and uuid-targeted types never index (decision table).
  EXPECT_FALSE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("*", "service:x://a", 60), {}, at_s(0)));
  EXPECT_FALSE(dir.record_advertisement(
      SdpId::kUpnp, advert_stream("uuid:1234", "http://d/desc", 60), {},
      at_s(0)));
  // No URL anywhere in the stream: nothing to key the record on.
  EventStream no_url;
  no_url.push_back(Event(EventType::kControlStart));
  no_url.push_back(Event(EventType::kServiceAlive));
  no_url.push_back(Event(EventType::kServiceTypeIs, {{"type", "clock"}}));
  no_url.push_back(Event(EventType::kControlStop));
  EXPECT_FALSE(dir.record_advertisement(SdpId::kSlp, no_url, {}, at_s(0)));
  EXPECT_EQ(dir.size(), 0u);
}

TEST(ServiceDirectory, RefreshReArmsDeadlineWithoutANewRecord) {
  ServiceDirectory dir;
  EventStream advert = advert_stream("clock", "service:clock://a", 10);
  ASSERT_TRUE(dir.record_advertisement(SdpId::kSlp, advert, {}, at_s(0)));
  ASSERT_TRUE(dir.record_advertisement(SdpId::kSlp, advert, {}, at_s(8)));
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir.stats(SdpId::kSlp).records_stored, 1u)
      << "a refresh is not a new insert";
  // The original deadline (t=10) passed; the refresh moved it to t=18.
  std::vector<const ServiceDirectory::Record*> matches;
  EXPECT_EQ(dir.collect("clock", at_s(15), matches), 1u);
  EXPECT_EQ(dir.collect("clock", at_s(19), matches), 0u);
}

TEST(ServiceDirectory, CollectNeverServesStaleBetweenSweeps) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://a", 5), {},
      at_s(0)));
  // Past the deadline but before any sweep ran: the record still occupies a
  // slot yet must not be served.
  std::vector<const ServiceDirectory::Record*> matches;
  EXPECT_EQ(dir.collect("clock", at_s(6), matches), 0u);
  EXPECT_FALSE(dir.has_fresh("clock", at_s(6)));
  EXPECT_EQ(dir.size(), 1u);
  // The timer sweep reclaims it.
  EXPECT_EQ(dir.sweep(at_s(6)), 1u);
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_EQ(dir.records_expired(), 1u);
  EXPECT_EQ(dir.find("service:clock://a"), nullptr);
}

TEST(ServiceDirectory, WithdrawTombstonesByUrlAndByUsn) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://a", 60), {},
      at_s(0)));
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kUpnp,
      advert_stream("clock", "http://10.0.0.2/desc.xml", 60, "uuid:dev-1"),
      {}, at_s(0)));

  // SLP/mDNS shape: the byebye names the URL.
  EXPECT_EQ(dir.withdraw(SdpId::kSlp, byebye_stream("service:clock://a")), 1u);
  EXPECT_EQ(dir.find("service:clock://a"), nullptr);
  EXPECT_EQ(dir.stats(SdpId::kSlp).withdrawals, 1u);

  // UPnP shape: the byebye carries only the USN.
  EXPECT_EQ(dir.withdraw(SdpId::kUpnp, byebye_stream("", "uuid:dev-1")), 1u);
  EXPECT_EQ(dir.find("http://10.0.0.2/desc.xml"), nullptr);
  EXPECT_EQ(dir.stats(SdpId::kUpnp).withdrawals, 1u);
  EXPECT_EQ(dir.size(), 0u);

  // Withdrawing the unknown is a no-op, not a crash or a counter bump.
  EXPECT_EQ(dir.withdraw(SdpId::kSlp, byebye_stream("service:clock://never")),
            0u);
}

TEST(ServiceDirectory, GenerationBumpLogicallyEmptiesTheIndex) {
  ServiceDirectory dir;
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://a", 600), {},
      at_s(0)));
  ASSERT_TRUE(dir.has_fresh("clock", at_s(1)));

  dir.bump_generation();  // a unit attached/detached, or a new registrar
  std::vector<const ServiceDirectory::Record*> matches;
  EXPECT_EQ(dir.collect("clock", at_s(1), matches), 0u);
  EXPECT_FALSE(dir.has_fresh("clock", at_s(1)));
  // The sweep reclaims stale-generation records even inside their TTL.
  EXPECT_EQ(dir.sweep(at_s(1)), 1u);
  EXPECT_EQ(dir.size(), 0u);

  // A re-announcement repopulates under the new generation.
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://a", 600), {},
      at_s(2)));
  EXPECT_TRUE(dir.has_fresh("clock", at_s(3)));
}

TEST(ServiceDirectory, LruEvictsTheLeastRecentlyUsedAtCapacity) {
  ServiceDirectory dir(
      {.max_records = 3, .type_buckets = 4, .max_answers = 4});
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://a", 600), {},
      at_s(0)));
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://b", 600), {},
      at_s(0)));
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("printer", "service:printer://c", 600), {},
      at_s(0)));
  // Touch the clock records so the printer becomes least recently used.
  std::vector<const ServiceDirectory::Record*> matches;
  ASSERT_EQ(dir.collect("clock", at_s(1), matches), 2u);

  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kMdns, advert_stream("camera", "service:camera://d", 600), {},
      at_s(2)));
  EXPECT_EQ(dir.size(), 3u);
  EXPECT_EQ(dir.evictions(), 1u);
  EXPECT_EQ(dir.find("service:printer://c"), nullptr) << "LRU victim";
  EXPECT_NE(dir.find("service:clock://a"), nullptr);
  EXPECT_NE(dir.find("service:camera://d"), nullptr);
}

TEST(ServiceDirectory, TouchReArmsTheDeadlineThroughTheWireIndex) {
  ServiceDirectory dir;
  Bytes advert_wire = wire_bytes("SRVREG service:clock://a 10s");
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kSlp, advert_stream("clock", "service:clock://a", 10),
      advert_wire, at_s(0)));

  // The TranslationCache short-circuited the byte-identical repeat at t=8:
  // the unit never parsed it, but touch() must still re-arm the deadline.
  EXPECT_TRUE(dir.touch(SdpId::kSlp, advert_wire, at_s(8)));
  std::vector<const ServiceDirectory::Record*> matches;
  EXPECT_EQ(dir.collect("clock", at_s(15), matches), 1u);
  EXPECT_EQ(dir.collect("clock", at_s(19), matches), 0u);

  // Unknown wire bytes touch nothing.
  EXPECT_FALSE(dir.touch(SdpId::kSlp, wire_bytes("some other frame"),
                         at_s(8)));
}

// --- Answer cache -----------------------------------------------------------

struct AnswerCacheFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 5};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& client = network.add_host("client", net::IpAddress(10, 0, 0, 9));

  std::shared_ptr<net::UdpSocket> reply_socket = gateway.udp_socket(0);
  std::shared_ptr<net::UdpSocket> client_socket = client.udp_socket(7700);
  std::vector<Bytes> received;
  net::Endpoint requester{net::IpAddress(10, 0, 0, 9), 7700};

  void SetUp() override {
    client_socket->set_receive_handler(
        [this](const net::Datagram& d) { received.push_back(d.payload); });
  }

  TranslationCache::Frame reply_frame(std::string_view payload) {
    TranslationCache::Frame frame;
    frame.target = SdpId::kSlp;
    frame.socket = reply_socket;
    frame.to = requester;
    frame.payload = std::make_shared<const Bytes>(wire_bytes(payload));
    return frame;
  }
};

TEST_F(AnswerCacheFixture, ReplaysTheStoredFramesForTheIdenticalQuery) {
  ServiceDirectory dir;
  Bytes query = wire_bytes("SRVRQST service:clock xid=7");

  // Miss while nothing is stored.
  EXPECT_FALSE(dir.replay_answer(SdpId::kSlp, query, requester, at_s(0)));

  dir.open_answer(SdpId::kSlp, query, requester, /*session_id=*/11, at_s(0));
  dir.add_answer_frame(SdpId::kSlp, 11, reply_frame("SRVRPLY one clock"));
  EXPECT_EQ(dir.answer_cache_size(), 1u);

  EXPECT_TRUE(dir.replay_answer(SdpId::kSlp, query, requester, at_s(1)));
  scheduler.run_for(sim::millis(100));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(to_string(received[0]), "SRVRPLY one clock");
  EXPECT_EQ(dir.answer_replays(), 1u);

  // Same bytes from a different requester: a distinct key, no replay.
  net::Endpoint other{net::IpAddress(10, 0, 0, 8), 7700};
  EXPECT_FALSE(dir.replay_answer(SdpId::kSlp, query, other, at_s(1)));
  // Same requester, different bytes: no replay either.
  EXPECT_FALSE(dir.replay_answer(
      SdpId::kSlp, wire_bytes("SRVRQST service:clock xid=8"), requester,
      at_s(1)));
}

TEST_F(AnswerCacheFixture, AnyIndexMutationInvalidatesCachedAnswers) {
  ServiceDirectory dir;
  Bytes query = wire_bytes("SRVRQST service:clock xid=7");
  dir.open_answer(SdpId::kSlp, query, requester, 11, at_s(0));
  dir.add_answer_frame(SdpId::kSlp, 11, reply_frame("SRVRPLY stale"));
  ASSERT_TRUE(dir.replay_answer(SdpId::kSlp, query, requester, at_s(1)));

  // A new record arriving changes what the answer should contain.
  ASSERT_TRUE(dir.record_advertisement(
      SdpId::kMdns, advert_stream("clock", "service:clock://new", 600), {},
      at_s(2)));
  EXPECT_FALSE(dir.replay_answer(SdpId::kSlp, query, requester, at_s(3)))
      << "epoch bump must invalidate every cached answer";

  // Re-answer under the new epoch, then a withdrawal invalidates again.
  dir.open_answer(SdpId::kSlp, query, requester, 12, at_s(4));
  dir.add_answer_frame(SdpId::kSlp, 12, reply_frame("SRVRPLY fresh"));
  ASSERT_TRUE(dir.replay_answer(SdpId::kSlp, query, requester, at_s(5)));
  ASSERT_EQ(dir.withdraw(SdpId::kMdns, byebye_stream("service:clock://new")),
            1u);
  EXPECT_FALSE(dir.replay_answer(SdpId::kSlp, query, requester, at_s(6)));
}

// --- End-to-end --------------------------------------------------------------

/// Regression (PR 9): bridged state used to expire only on sweep-on-touch —
/// a unit that never received another message after the deadline kept its
/// foreign-service mirror forever. The gateway's timer sweep must age it out
/// with NO inbound traffic after the advertisement.
TEST(DirectoryEndToEnd, IdleUnitBridgedStateExpiresWithoutFurtherTraffic) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 17};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));

  IndissConfig config;
  config.enabled_sdps = {SdpId::kSlp, SdpId::kMdns};
  config.unit_options.expire_bridged_state = true;
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  // One SLP registration with a 30-second lifetime, bridged into the mDNS
  // unit's foreign-service mirror...
  slp::SrvReg reg;
  reg.url_entry = {30, "service:clock:soap://10.0.0.2:4005/idle-clock"};
  reg.service_type = "service:clock";
  reg.attr_list = "(friendlyName=Idle Clock)";
  auto announcer = service.udp_socket(0);
  announcer->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                     slp::encode(slp::Message(reg)));
  scheduler.run_for(sim::seconds(2));

  auto* mdns_unit = indiss.unit_as<MdnsUnit>(SdpId::kMdns);
  ASSERT_NE(mdns_unit, nullptr);
  ASSERT_EQ(mdns_unit->foreign_services().size(), 1u);

  // ...then total silence. Only the scheduler advances: past the 30s
  // lifetime plus the sweep period the mirror must be empty.
  scheduler.run_for(sim::seconds(60));
  EXPECT_TRUE(mdns_unit->foreign_services().empty())
      << "idle unit kept TTL-expired bridged state: the timer sweep did not "
         "run";
  EXPECT_GE(mdns_unit->stats().bridged_state_expired, 1u);
  indiss.stop();
}

/// With expire_bridged_state off (the default), the same silence must leave
/// the mirror untouched — the sweep never runs, fingerprints stay identical.
TEST(DirectoryEndToEnd, DefaultConfigNeverExpiresBridgedState) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 17};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));

  IndissConfig config;
  config.enabled_sdps = {SdpId::kSlp, SdpId::kMdns};
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  slp::SrvReg reg;
  reg.url_entry = {30, "service:clock:soap://10.0.0.2:4005/idle-clock"};
  reg.service_type = "service:clock";
  auto announcer = service.udp_socket(0);
  announcer->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                     slp::encode(slp::Message(reg)));
  scheduler.run_for(sim::seconds(2));

  auto* mdns_unit = indiss.unit_as<MdnsUnit>(SdpId::kMdns);
  ASSERT_EQ(mdns_unit->foreign_services().size(), 1u);
  scheduler.run_for(sim::seconds(60));
  EXPECT_EQ(mdns_unit->foreign_services().size(), 1u);
  EXPECT_EQ(mdns_unit->stats().bridged_state_expired, 0u);
  indiss.stop();
}

namespace e2e {

constexpr std::string_view kClockUrl = "soap://10.0.0.2:4005/mdns-clock";
/// What the SLP composer puts on the wire: it always prefixes
/// "service:<type>:" — bridged and directory-answered replies alike.
constexpr std::string_view kSlpReplyUrl =
    "service:clock:soap://10.0.0.2:4005/mdns-clock";

mdns::ServiceInstance clock_instance() {
  mdns::ServiceInstance instance;
  instance.instance = "clock1";
  instance.service_type = "_clock._tcp";
  instance.port = 4005;
  instance.txt = {{"url", std::string(kClockUrl)}};
  return instance;
}

Bytes clock_query(std::uint16_t xid) {
  slp::SrvRqst request;
  request.header.xid = xid;
  request.service_type = "service:clock";
  return slp::encode(slp::Message(request));
}

/// URLs listed in a captured SrvRply, empty when the bytes are not one.
std::vector<std::string> rply_urls(const Bytes& payload) {
  std::vector<std::string> urls;
  auto message = slp::decode(payload);
  if (!message.has_value()) return urls;
  if (const auto* rply = std::get_if<slp::SrvRply>(&*message)) {
    for (const auto& entry : rply->url_entries) urls.push_back(entry.url);
  }
  return urls;
}

}  // namespace e2e

/// A native mDNS announcement indexes the service; an SLP browse is answered
/// by the gateway (SLP DA role) from the index; the goodbye tombstones the
/// record so the withdrawn service is never answered again.
TEST(DirectoryEndToEnd, SlpBrowseAnsweredFromIndexUntilByebyeTombstones) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 23};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));
  net::Host& client = network.add_host("client", net::IpAddress(10, 0, 0, 9));

  IndissConfig config;
  config.enabled_sdps = {SdpId::kSlp, SdpId::kMdns};
  config.enable_directory = true;
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  mdns::MdnsResponder responder(service);
  responder.publish(e2e::clock_instance());
  scheduler.run_for(sim::seconds(3));
  ASSERT_NE(indiss.directory()->find(e2e::kClockUrl), nullptr)
      << "the bridged announcement must populate the index";

  auto requester = client.udp_socket(0);
  std::vector<Bytes> replies;
  requester->set_receive_handler(
      [&](const net::Datagram& d) { replies.push_back(d.payload); });
  requester->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                     e2e::clock_query(77));
  scheduler.run_for(sim::seconds(2));

  ASSERT_EQ(replies.size(), 1u);
  auto urls = e2e::rply_urls(replies[0]);
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0], e2e::kSlpReplyUrl);
  EXPECT_EQ(indiss.directory()->stats(SdpId::kSlp).answered, 1u);

  // Goodbye: TTL-0 records withdraw the instance everywhere at once.
  responder.goodbye();
  scheduler.run_for(sim::seconds(2));
  EXPECT_EQ(indiss.directory()->find(e2e::kClockUrl), nullptr);
  EXPECT_GE(indiss.directory()->stats(SdpId::kMdns).withdrawals, 1u);

  // The repeat browse must not be answered from the index: whatever the
  // bridged path now produces, the withdrawn URL never appears.
  replies.clear();
  requester->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                     e2e::clock_query(78));
  scheduler.run_for(sim::seconds(3));
  for (const auto& payload : replies) {
    for (const auto& url : e2e::rply_urls(payload)) {
      EXPECT_EQ(url.find("mdns-clock"), std::string::npos)
          << "withdrawn service answered after byebye: " << url;
    }
  }
  EXPECT_EQ(indiss.directory()->stats(SdpId::kSlp).answered, 1u)
      << "only the pre-byebye browse may be answered from the index";
  indiss.stop();
}

/// The acceptance storm: repeated identical browses are answered from the
/// index (>=95%) with zero query frames reaching the origin mDNS network.
TEST(DirectoryEndToEnd, RepeatedBrowseStormIsAnsweredWithZeroOriginFrames) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 29};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& service = network.add_host("svc", net::IpAddress(10, 0, 0, 2));
  net::Host& client = network.add_host("client", net::IpAddress(10, 0, 0, 9));
  net::Host& observer = network.add_host("obs", net::IpAddress(10, 0, 0, 8));

  IndissConfig config;
  config.enabled_sdps = {SdpId::kSlp, SdpId::kMdns};
  config.enable_directory = true;
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::millis(10));

  mdns::MdnsResponder responder(service);
  responder.publish(e2e::clock_instance());
  scheduler.run_for(sim::seconds(3));
  ASSERT_NE(indiss.directory()->find(e2e::kClockUrl), nullptr);

  // Every DNS *question* on the origin group from here on is an escape: a
  // browse the gateway translated out instead of answering.
  auto origin_listener = observer.udp_socket(5353);
  origin_listener->join_group(net::IpAddress(224, 0, 0, 251));
  std::size_t origin_queries = 0;
  origin_listener->set_receive_handler([&](const net::Datagram& d) {
    auto message = mdns::decode(d.payload);
    if (message.has_value() && !message->is_response()) origin_queries += 1;
  });

  auto requester = client.udp_socket(0);
  std::vector<Bytes> replies;
  requester->set_receive_handler(
      [&](const net::Datagram& d) { replies.push_back(d.payload); });

  const int kQueries = 40;
  Bytes query = e2e::clock_query(1234);  // byte-identical repeats
  for (int i = 0; i < kQueries; ++i) {
    requester->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                       query);
    scheduler.run_for(sim::millis(500));
  }

  ASSERT_EQ(replies.size(), static_cast<std::size_t>(kQueries));
  for (const auto& payload : replies) {
    EXPECT_EQ(payload, replies.front())
        << "replayed answers must be byte-identical to the composed one";
  }
  auto urls = e2e::rply_urls(replies.front());
  ASSERT_EQ(urls.size(), 1u);
  EXPECT_EQ(urls[0], e2e::kSlpReplyUrl);

  const auto& stats = indiss.directory()->stats(SdpId::kSlp);
  EXPECT_GE(stats.answered, static_cast<std::uint64_t>(kQueries * 95 / 100));
  EXPECT_EQ(stats.answered + stats.bridged,
            static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(origin_queries, 0u)
      << "an answered browse must cost the origin network zero frames";
  // All repeats after the first replay straight from the answer cache —
  // no session, no parse, no compose.
  EXPECT_GE(indiss.directory()->answer_replays(),
            static_cast<std::uint64_t>(kQueries - 1));
  EXPECT_LE(indiss.unit(SdpId::kSlp)->stats().messages_composed, 2u);
  indiss.stop();
}

/// Directory mode announces the gateway as an SLP DA so native UAs can
/// switch to unicast repository lookups (paper's DA role).
TEST(DirectoryEndToEnd, DirectoryModeMulticastsAnSlpDaAdvert) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 31};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& observer = network.add_host("obs", net::IpAddress(10, 0, 0, 8));

  auto slp_listener = observer.udp_socket(slp::kSlpPort);
  slp_listener->join_group(slp::kSlpMulticastGroup);
  std::size_t da_adverts = 0;
  slp_listener->set_receive_handler([&](const net::Datagram& d) {
    auto message = slp::decode(d.payload);
    if (message.has_value() &&
        std::holds_alternative<slp::DAAdvert>(*message)) {
      da_adverts += 1;
    }
  });

  IndissConfig config;
  config.enabled_sdps = {SdpId::kSlp, SdpId::kMdns};
  config.enable_directory = true;
  Indiss indiss(gateway, config);
  indiss.start();
  scheduler.run_for(sim::seconds(2));
  EXPECT_GE(da_adverts, 1u);
  indiss.stop();

  // Without directory mode the gateway must stay silent on the SLP group.
  da_adverts = 0;
  IndissConfig off_config;
  off_config.enabled_sdps = {SdpId::kSlp, SdpId::kMdns};
  Indiss off(gateway, off_config);
  off.start();
  scheduler.run_for(sim::seconds(2));
  EXPECT_EQ(da_adverts, 0u);
  off.stop();
}

}  // namespace
}  // namespace indiss::core
