// Tests for the INDISS event model (Table 1): set membership, mandatory
// alphabet, names and stream framing.
#include <gtest/gtest.h>

#include "core/event.hpp"
#include "core/typemap.hpp"

namespace indiss::core {
namespace {

TEST(EventSets, Table1Classification) {
  EXPECT_EQ(event_set(EventType::kControlStart), EventSet::kControl);
  EXPECT_EQ(event_set(EventType::kControlParserSwitch), EventSet::kControl);
  EXPECT_EQ(event_set(EventType::kNetMulticast), EventSet::kNetwork);
  EXPECT_EQ(event_set(EventType::kServiceRequest), EventSet::kService);
  EXPECT_EQ(event_set(EventType::kReqLang), EventSet::kRequest);
  EXPECT_EQ(event_set(EventType::kResServUrl), EventSet::kResponse);
  EXPECT_EQ(event_set(EventType::kRegRegister), EventSet::kRegistration);
  EXPECT_EQ(event_set(EventType::kDiscRepositoryFound), EventSet::kDiscovery);
  EXPECT_EQ(event_set(EventType::kAdvInterval), EventSet::kAdvertisement);
  EXPECT_EQ(event_set(EventType::kSlpReqPredicate), EventSet::kSdpSpecific);
  EXPECT_EQ(event_set(EventType::kUpnpDeviceUrlDesc), EventSet::kSdpSpecific);
}

TEST(EventSets, MandatoryAlphabetIsTheFiveTable1Sets) {
  // ∑m = Control ∪ Network ∪ Service ∪ Request ∪ Response.
  EXPECT_TRUE(is_mandatory(EventType::kControlStop));
  EXPECT_TRUE(is_mandatory(EventType::kNetSourceAddr));
  EXPECT_TRUE(is_mandatory(EventType::kServiceByeBye));
  EXPECT_TRUE(is_mandatory(EventType::kReqLang));
  EXPECT_TRUE(is_mandatory(EventType::kResTtl));
  // Extension sets and SDP-specific events are not mandatory.
  EXPECT_FALSE(is_mandatory(EventType::kRegRegister));
  EXPECT_FALSE(is_mandatory(EventType::kDiscRepositoryQuery));
  EXPECT_FALSE(is_mandatory(EventType::kSlpReqId));
  EXPECT_FALSE(is_mandatory(EventType::kUpnpUsn));
  EXPECT_FALSE(is_mandatory(EventType::kJiniProxy));
}

TEST(EventNames, MatchThePaper) {
  EXPECT_EQ(event_name(EventType::kControlStart), "SDP_C_START");
  EXPECT_EQ(event_name(EventType::kControlParserSwitch),
            "SDP_C_PARSER_SWITCH");
  EXPECT_EQ(event_name(EventType::kNetSourceAddr), "SDP_NET_SOURCE_ADDR");
  EXPECT_EQ(event_name(EventType::kServiceByeBye), "SDP_SERVICE_BYEBYE");
  EXPECT_EQ(event_name(EventType::kResServUrl), "SDP_RES_SERV_URL");
  EXPECT_EQ(event_name(EventType::kSlpReqPredicate), "SDP_REQ_PREDICATE");
  EXPECT_EQ(event_name(EventType::kUpnpDeviceUrlDesc), "SDP_DEVICE_URL_DESC");
}

TEST(Event, DataAccessors) {
  Event e(EventType::kResServUrl, {{"url", "soap://10.0.0.2:4005/c"}});
  EXPECT_TRUE(e.has("url"));
  EXPECT_EQ(e.get("url"), "soap://10.0.0.2:4005/c");
  EXPECT_EQ(e.get("missing", "dflt"), "dflt");
  EXPECT_NE(e.to_string().find("SDP_RES_SERV_URL"), std::string::npos);
}

TEST(Framing, WellFramedStreams) {
  EventStream good{Event(EventType::kControlStart),
                   Event(EventType::kServiceRequest),
                   Event(EventType::kControlStop)};
  EXPECT_TRUE(well_framed(good));

  EventStream no_start{Event(EventType::kServiceRequest),
                       Event(EventType::kControlStop)};
  EXPECT_FALSE(well_framed(no_start));

  EventStream nested{Event(EventType::kControlStart),
                     Event(EventType::kControlStart),
                     Event(EventType::kControlStop)};
  EXPECT_FALSE(well_framed(nested));

  EXPECT_FALSE(well_framed(EventStream{}));
}

TEST(Framing, FindEvent) {
  EventStream stream{Event(EventType::kControlStart),
                     Event(EventType::kResServUrl, {{"url", "x"}}),
                     Event(EventType::kControlStop)};
  ASSERT_NE(find_event(stream, EventType::kResServUrl), nullptr);
  EXPECT_EQ(find_event(stream, EventType::kResServUrl)->get("url"), "x");
  EXPECT_EQ(find_event(stream, EventType::kResTtl), nullptr);
}

// --- Canonical type mapping ---------------------------------------------

TEST(TypeMap, SlpCanonicalization) {
  EXPECT_EQ(canonical_from_slp("service:clock"), "clock");
  EXPECT_EQ(canonical_from_slp("service:clock:soap"), "clock");
  EXPECT_EQ(canonical_from_slp("Service:Clock"), "clock");
  EXPECT_EQ(canonical_from_slp("clock"), "clock");
}

TEST(TypeMap, UpnpCanonicalization) {
  EXPECT_EQ(canonical_from_upnp("urn:schemas-upnp-org:device:clock:1"),
            "clock");
  EXPECT_EQ(canonical_from_upnp("urn:schemas-upnp-org:service:timer:1"),
            "timer");
  EXPECT_EQ(canonical_from_upnp("ssdp:all"), "*");
  EXPECT_EQ(canonical_from_upnp("upnp:rootdevice"), "*");
}

TEST(TypeMap, RoundTrips) {
  EXPECT_EQ(slp_from_canonical("clock"), "service:clock");
  EXPECT_EQ(upnp_device_from_canonical("clock"),
            "urn:schemas-upnp-org:device:clock:1");
  EXPECT_EQ(canonical_from_upnp(upnp_device_from_canonical("clock")), "clock");
  EXPECT_EQ(canonical_from_slp(slp_from_canonical("clock")), "clock");
  EXPECT_EQ(upnp_device_from_canonical("*"), "ssdp:all");
}

}  // namespace
}  // namespace indiss::core
