// Tests for the INDISS event model (Table 1): set membership, mandatory
// alphabet, names and stream framing — plus the interned SmallRecord storage
// the events ride on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/event.hpp"
#include "core/typemap.hpp"
// Counts allocations for the regression tests below: Event::get/has used to
// build a temporary std::string key per call even for string_view arguments.
#include "tests/support/alloc_meter.hpp"

namespace indiss::core {
namespace {

TEST(EventSets, Table1Classification) {
  EXPECT_EQ(event_set(EventType::kControlStart), EventSet::kControl);
  EXPECT_EQ(event_set(EventType::kControlParserSwitch), EventSet::kControl);
  EXPECT_EQ(event_set(EventType::kNetMulticast), EventSet::kNetwork);
  EXPECT_EQ(event_set(EventType::kServiceRequest), EventSet::kService);
  EXPECT_EQ(event_set(EventType::kReqLang), EventSet::kRequest);
  EXPECT_EQ(event_set(EventType::kResServUrl), EventSet::kResponse);
  EXPECT_EQ(event_set(EventType::kRegRegister), EventSet::kRegistration);
  EXPECT_EQ(event_set(EventType::kDiscRepositoryFound), EventSet::kDiscovery);
  EXPECT_EQ(event_set(EventType::kAdvInterval), EventSet::kAdvertisement);
  EXPECT_EQ(event_set(EventType::kSlpReqPredicate), EventSet::kSdpSpecific);
  EXPECT_EQ(event_set(EventType::kUpnpDeviceUrlDesc), EventSet::kSdpSpecific);
}

TEST(EventSets, MandatoryAlphabetIsTheFiveTable1Sets) {
  // ∑m = Control ∪ Network ∪ Service ∪ Request ∪ Response.
  EXPECT_TRUE(is_mandatory(EventType::kControlStop));
  EXPECT_TRUE(is_mandatory(EventType::kNetSourceAddr));
  EXPECT_TRUE(is_mandatory(EventType::kServiceByeBye));
  EXPECT_TRUE(is_mandatory(EventType::kReqLang));
  EXPECT_TRUE(is_mandatory(EventType::kResTtl));
  // Extension sets and SDP-specific events are not mandatory.
  EXPECT_FALSE(is_mandatory(EventType::kRegRegister));
  EXPECT_FALSE(is_mandatory(EventType::kDiscRepositoryQuery));
  EXPECT_FALSE(is_mandatory(EventType::kSlpReqId));
  EXPECT_FALSE(is_mandatory(EventType::kUpnpUsn));
  EXPECT_FALSE(is_mandatory(EventType::kJiniProxy));
}

TEST(EventNames, MatchThePaper) {
  EXPECT_EQ(event_name(EventType::kControlStart), "SDP_C_START");
  EXPECT_EQ(event_name(EventType::kControlParserSwitch),
            "SDP_C_PARSER_SWITCH");
  EXPECT_EQ(event_name(EventType::kNetSourceAddr), "SDP_NET_SOURCE_ADDR");
  EXPECT_EQ(event_name(EventType::kServiceByeBye), "SDP_SERVICE_BYEBYE");
  EXPECT_EQ(event_name(EventType::kResServUrl), "SDP_RES_SERV_URL");
  EXPECT_EQ(event_name(EventType::kSlpReqPredicate), "SDP_REQ_PREDICATE");
  EXPECT_EQ(event_name(EventType::kUpnpDeviceUrlDesc), "SDP_DEVICE_URL_DESC");
}

TEST(Event, DataAccessors) {
  Event e(EventType::kResServUrl, {{"url", "soap://10.0.0.2:4005/c"}});
  EXPECT_TRUE(e.has("url"));
  EXPECT_EQ(e.get("url"), "soap://10.0.0.2:4005/c");
  EXPECT_EQ(e.get("missing", "dflt"), "dflt");
  EXPECT_NE(e.to_string().find("SDP_RES_SERV_URL"), std::string::npos);
}

TEST(Event, HeterogeneousLookupWithoutAllocation) {
  // Regression: get/has took string_view but built a std::string per call.
  // Every key spelling — literal, string_view, std::string — must hit the
  // same overload and allocate nothing.
  Event e(EventType::kNetSourceAddr, {{"addr", "10.0.0.7"}, {"port", "427"}});
  std::string string_key = "addr";
  std::string_view view_key = "port";

  std::uint64_t before = indiss::testing::g_heap_allocs;
  bool ok = e.get("addr") == "10.0.0.7";           // literal
  ok = ok && e.get(string_key) == "10.0.0.7";      // std::string
  ok = ok && e.get(view_key) == "427";             // string_view
  ok = ok && e.has("port") && !e.has("absent-key-never-interned");
  ok = ok && e.get("absent-key-never-interned", "fb") == "fb";
  std::uint64_t after = indiss::testing::g_heap_allocs;
  EXPECT_TRUE(ok);
  EXPECT_EQ(after - before, 0u) << "event lookups must not heap-allocate";
}

TEST(Event, OverwriteReusesValueCapacityAndSurvivesAliasing) {
  // set() on an existing key assigns into the entry's string: a recycled
  // event re-filled with same-shaped data allocates nothing (the mDNS
  // zero-alloc round trip rides on this).
  Event e(EventType::kResServUrl,
          {{"url", "soap://10.0.0.2:4006/steady-state-url"}});
  std::uint64_t before = indiss::testing::g_heap_allocs;
  e.set("url", "soap://10.0.0.9:4004/steady-state-url");
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "overwriting with same-length value must reuse capacity";
  EXPECT_EQ(e.get("url"), "soap://10.0.0.9:4004/steady-state-url");

  // A view obtained from get() aliases the entry being overwritten; set()
  // must materialize it before clobbering the storage it points into.
  std::string_view alias = e.get("url");
  e.set("url", alias.substr(7));
  EXPECT_EQ(e.get("url"), "10.0.0.9:4004/steady-state-url");

  // Aliasing a *different* entry of the same record is also safe.
  e.set("native", e.get("url"));
  EXPECT_EQ(e.get("native"), "10.0.0.9:4004/steady-state-url");
}

TEST(Event, SetOverwritesAndPreservesOrder) {
  Event e(EventType::kServiceAttr, {{"key", "color"}, {"value", "blue"}});
  e.set("value", "green");
  EXPECT_EQ(e.get("value"), "green");
  EXPECT_EQ(e.data.size(), 2u);
  std::string order;
  e.data.for_each([&](std::string_view k, std::string_view) {
    order += k;
    order += ",";
  });
  EXPECT_EQ(order, "key,value,");
}

TEST(Event, RecordSpillsPastInlineCapacity) {
  // More entries than the inline buffer holds: the record must keep every
  // pair, in order, with lookups still exact.
  Event e(EventType::kServiceAttr);
  for (int i = 0; i < 12; ++i) {
    e.set("k" + std::to_string(i), "v" + std::to_string(i));
  }
  EXPECT_EQ(e.data.size(), 12u);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(e.get("k" + std::to_string(i)), "v" + std::to_string(i));
  }
  Event copy = e;  // deep copy across inline + overflow storage
  EXPECT_EQ(copy.get("k11"), "v11");
  copy.set("k11", "changed");
  EXPECT_EQ(e.get("k11"), "v11") << "copies must not share storage";

  // A moved-from record must be empty and reusable, not left claiming
  // spilled entries whose overflow storage has been taken.
  Event moved = std::move(e);
  EXPECT_EQ(moved.get("k11"), "v11");
  EXPECT_TRUE(e.data.empty());
  e.set("fresh", "1");
  EXPECT_EQ(e.get("fresh"), "1");
}

// --- Exhaustive alphabet round trip --------------------------------------
//
// Iterates every enumerator so that adding an event type without updating
// event_name/event_set/is_mandatory (or this table) fails loudly instead of
// drifting.

TEST(EventAlphabet, EveryTypeHasAUniqueName) {
  std::set<std::string_view> names;
  for (std::uint16_t i = 0; i < kEventTypeCount; ++i) {
    auto type = static_cast<EventType>(i);
    std::string_view name = event_name(type);
    EXPECT_NE(name, "SDP_UNKNOWN") << "enumerator " << i << " has no name";
    EXPECT_TRUE(name.starts_with("SDP_")) << name;
    EXPECT_TRUE(names.insert(name).second)
        << "duplicate event name: " << name;
  }
  EXPECT_EQ(names.size(), kEventTypeCount);
}

TEST(EventAlphabet, EveryTypeHasTheExpectedSet) {
  using ET = EventType;
  const std::pair<ET, EventSet> expected[] = {
      {ET::kControlStart, EventSet::kControl},
      {ET::kControlStop, EventSet::kControl},
      {ET::kControlParserSwitch, EventSet::kControl},
      {ET::kControlSocketSwitch, EventSet::kControl},
      {ET::kNetUnicast, EventSet::kNetwork},
      {ET::kNetMulticast, EventSet::kNetwork},
      {ET::kNetSourceAddr, EventSet::kNetwork},
      {ET::kNetDestAddr, EventSet::kNetwork},
      {ET::kNetType, EventSet::kNetwork},
      {ET::kServiceRequest, EventSet::kService},
      {ET::kServiceResponse, EventSet::kService},
      {ET::kServiceAlive, EventSet::kService},
      {ET::kServiceByeBye, EventSet::kService},
      {ET::kServiceTypeIs, EventSet::kService},
      {ET::kServiceAttr, EventSet::kService},
      {ET::kReqLang, EventSet::kRequest},
      {ET::kResOk, EventSet::kResponse},
      {ET::kResErr, EventSet::kResponse},
      {ET::kResTtl, EventSet::kResponse},
      {ET::kResServUrl, EventSet::kResponse},
      {ET::kRegRegister, EventSet::kRegistration},
      {ET::kRegDeregister, EventSet::kRegistration},
      {ET::kRegAck, EventSet::kRegistration},
      {ET::kDiscRepositoryFound, EventSet::kDiscovery},
      {ET::kDiscRepositoryQuery, EventSet::kDiscovery},
      {ET::kAdvInterval, EventSet::kAdvertisement},
      {ET::kSlpReqVersion, EventSet::kSdpSpecific},
      {ET::kSlpReqScope, EventSet::kSdpSpecific},
      {ET::kSlpReqPredicate, EventSet::kSdpSpecific},
      {ET::kSlpReqId, EventSet::kSdpSpecific},
      {ET::kUpnpDeviceUrlDesc, EventSet::kSdpSpecific},
      {ET::kUpnpUsn, EventSet::kSdpSpecific},
      {ET::kUpnpServerHeader, EventSet::kSdpSpecific},
      {ET::kUpnpSearchTarget, EventSet::kSdpSpecific},
      {ET::kJiniRegistrarId, EventSet::kSdpSpecific},
      {ET::kJiniGroups, EventSet::kSdpSpecific},
      {ET::kJiniProxy, EventSet::kSdpSpecific},
      {ET::kMdnsQuestion, EventSet::kSdpSpecific},
      {ET::kMdnsInstance, EventSet::kSdpSpecific},
      {ET::kMdnsSrv, EventSet::kSdpSpecific},
  };
  ASSERT_EQ(std::size(expected), kEventTypeCount)
      << "new EventType enumerator missing from this table";
  for (const auto& [type, set] : expected) {
    EXPECT_EQ(event_set(type), set) << event_name(type);
  }
}

TEST(EventAlphabet, MandatoryIffInTheFiveTable1Sets) {
  for (std::uint16_t i = 0; i < kEventTypeCount; ++i) {
    auto type = static_cast<EventType>(i);
    EventSet set = event_set(type);
    bool expected = set == EventSet::kControl || set == EventSet::kNetwork ||
                    set == EventSet::kService || set == EventSet::kRequest ||
                    set == EventSet::kResponse;
    EXPECT_EQ(is_mandatory(type), expected) << event_name(type);
  }
}

TEST(Framing, WellFramedStreams) {
  EventStream good{Event(EventType::kControlStart),
                   Event(EventType::kServiceRequest),
                   Event(EventType::kControlStop)};
  EXPECT_TRUE(well_framed(good));

  EventStream no_start{Event(EventType::kServiceRequest),
                       Event(EventType::kControlStop)};
  EXPECT_FALSE(well_framed(no_start));

  EventStream nested{Event(EventType::kControlStart),
                     Event(EventType::kControlStart),
                     Event(EventType::kControlStop)};
  EXPECT_FALSE(well_framed(nested));

  EXPECT_FALSE(well_framed(EventStream{}));
}

TEST(Framing, FindEvent) {
  EventStream stream{Event(EventType::kControlStart),
                     Event(EventType::kResServUrl, {{"url", "x"}}),
                     Event(EventType::kControlStop)};
  ASSERT_NE(find_event(stream, EventType::kResServUrl), nullptr);
  EXPECT_EQ(find_event(stream, EventType::kResServUrl)->get("url"), "x");
  EXPECT_EQ(find_event(stream, EventType::kResTtl), nullptr);
}

// --- Canonical type mapping ---------------------------------------------

TEST(TypeMap, SlpCanonicalization) {
  EXPECT_EQ(canonical_from_slp("service:clock"), "clock");
  EXPECT_EQ(canonical_from_slp("service:clock:soap"), "clock");
  EXPECT_EQ(canonical_from_slp("Service:Clock"), "clock");
  EXPECT_EQ(canonical_from_slp("clock"), "clock");
}

TEST(TypeMap, UpnpCanonicalization) {
  EXPECT_EQ(canonical_from_upnp("urn:schemas-upnp-org:device:clock:1"),
            "clock");
  EXPECT_EQ(canonical_from_upnp("urn:schemas-upnp-org:service:timer:1"),
            "timer");
  EXPECT_EQ(canonical_from_upnp("ssdp:all"), "*");
  EXPECT_EQ(canonical_from_upnp("upnp:rootdevice"), "*");
}

TEST(TypeMap, DnssdCanonicalization) {
  EXPECT_EQ(canonical_from_dnssd("_clock._tcp.local"), "clock");
  EXPECT_EQ(canonical_from_dnssd("_clock._udp.local"), "clock");
  EXPECT_EQ(canonical_from_dnssd("clock1._clock._tcp.local"), "clock");
  EXPECT_EQ(canonical_from_dnssd("_services._dns-sd._udp.local"), "*");
  EXPECT_EQ(dnssd_from_canonical("clock"), "_clock._tcp.local");
  EXPECT_EQ(dnssd_from_canonical("*"), "_services._dns-sd._udp.local");
  EXPECT_EQ(canonical_from_dnssd(dnssd_from_canonical("clock")), "clock");
}

TEST(TypeMap, RoundTrips) {
  EXPECT_EQ(slp_from_canonical("clock"), "service:clock");
  EXPECT_EQ(upnp_device_from_canonical("clock"),
            "urn:schemas-upnp-org:device:clock:1");
  EXPECT_EQ(canonical_from_upnp(upnp_device_from_canonical("clock")), "clock");
  EXPECT_EQ(canonical_from_slp(slp_from_canonical("clock")), "clock");
  EXPECT_EQ(upnp_device_from_canonical("*"), "ssdp:all");
}

}  // namespace
}  // namespace indiss::core
