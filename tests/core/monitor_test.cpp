// Monitor component tests: port-identity detection, own-traffic filtering,
// forwarding, and dynamic scan reconfiguration.
#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "core/unit.hpp"
#include "net/host.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "slp/agents.hpp"
#include "slp/wire.hpp"
#include "upnp/ssdp.hpp"

namespace indiss::core {
namespace {

struct RecordingUnit : Unit {
  explicit RecordingUnit(net::Host& host) : Unit(SdpId::kSlp, host) {}
  std::vector<net::Datagram> received;
  void on_native_message(const net::Datagram& d) override {
    received.push_back(d);
  }

 protected:
  void compose_native_request(Session&) override {}
  void compose_native_reply(Session&) override {}
};

struct MonitorFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 1};
  net::Host& indiss_host = network.add_host("indiss", net::IpAddress(10, 0, 0, 5));
  net::Host& other_host = network.add_host("other", net::IpAddress(10, 0, 0, 6));

  void send_slp_request_from(net::Host& host) {
    auto socket = host.udp_socket(0);
    slp::SrvRqst request;
    request.service_type = "service:clock";
    socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                    slp::encode(slp::Message(request)));
    scheduler.run_all();
  }
};

TEST_F(MonitorFixture, DetectsSlpFromDataArrival) {
  Monitor monitor(indiss_host);
  monitor.scan_all();
  EXPECT_FALSE(monitor.has_detected(SdpId::kSlp));
  send_slp_request_from(other_host);
  EXPECT_TRUE(monitor.has_detected(SdpId::kSlp));
  EXPECT_FALSE(monitor.has_detected(SdpId::kUpnp));
  EXPECT_EQ(monitor.datagrams_seen(), 1u);
}

TEST_F(MonitorFixture, DetectsUpnpIndependently) {
  Monitor monitor(indiss_host);
  monitor.scan_all();
  auto socket = other_host.udp_socket(0);
  upnp::SearchRequest request;
  request.st = "ssdp:all";
  socket->send_to(net::Endpoint{upnp::kSsdpMulticastGroup, upnp::kSsdpPort},
                  to_bytes(request.to_http().serialize()));
  scheduler.run_all();
  EXPECT_TRUE(monitor.has_detected(SdpId::kUpnp));
  EXPECT_FALSE(monitor.has_detected(SdpId::kSlp));
}

TEST_F(MonitorFixture, DetectionIsContentBlind) {
  // Garbage on the SLP port still counts as SLP detection: detection is
  // based on data existence at the port, not content (paper §2.1).
  Monitor monitor(indiss_host);
  monitor.scan_all();
  auto socket = other_host.udp_socket(0);
  socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                  to_bytes("not slp at all"));
  scheduler.run_all();
  EXPECT_TRUE(monitor.has_detected(SdpId::kSlp));
}

TEST_F(MonitorFixture, ForwardsRawDataToUnit) {
  Monitor monitor(indiss_host);
  monitor.scan_all();
  RecordingUnit unit(indiss_host);
  monitor.forward_to(SdpId::kSlp, &unit);
  send_slp_request_from(other_host);
  ASSERT_EQ(unit.received.size(), 1u);
  EXPECT_EQ(unit.received[0].destination.port, slp::kSlpPort);
}

TEST_F(MonitorFixture, FiltersOwnEndpoints) {
  auto own = std::make_shared<OwnEndpoints>();
  Monitor monitor(indiss_host, own);
  monitor.scan_all();
  // A socket INDISS itself sends from (e.g. a unit's client socket).
  auto own_socket = indiss_host.udp_socket(0);
  own->insert(own_socket->local_endpoint());
  slp::SrvRqst request;
  own_socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                      slp::encode(slp::Message(request)));
  scheduler.run_all();
  EXPECT_FALSE(monitor.has_detected(SdpId::kSlp));
  EXPECT_EQ(monitor.datagrams_filtered(), 1u);
}

TEST_F(MonitorFixture, LocalNonIndissTrafficIsSeen) {
  // A native client on the *same host* as INDISS must be intercepted (the
  // Fig 9 client-side deployment depends on loopback interception).
  Monitor monitor(indiss_host, std::make_shared<OwnEndpoints>());
  monitor.scan_all();
  send_slp_request_from(indiss_host);
  EXPECT_TRUE(monitor.has_detected(SdpId::kSlp));
}

TEST_F(MonitorFixture, DetectionHandlerFiresPerDatagram) {
  Monitor monitor(indiss_host);
  monitor.scan_all();
  int detections = 0;
  monitor.set_detection_handler(
      [&](SdpId sdp, const net::Datagram&) {
        EXPECT_EQ(sdp, SdpId::kSlp);
        ++detections;
      });
  send_slp_request_from(other_host);
  send_slp_request_from(other_host);
  EXPECT_EQ(detections, 2);
}

TEST_F(MonitorFixture, StopScanningSilencesSdp) {
  Monitor monitor(indiss_host);
  monitor.scan_all();
  monitor.stop_scanning(SdpId::kSlp);
  send_slp_request_from(other_host);
  EXPECT_FALSE(monitor.has_detected(SdpId::kSlp));
}

TEST_F(MonitorFixture, IanaTableCoversAllSdps) {
  bool slp = false, upnp = false, jini = false;
  for (const auto& entry : iana_table()) {
    slp = slp || (entry.sdp == SdpId::kSlp && entry.port == 427);
    upnp = upnp || (entry.sdp == SdpId::kUpnp && entry.port == 1900);
    jini = jini || (entry.sdp == SdpId::kJini && entry.port == 4160);
  }
  EXPECT_TRUE(slp);
  EXPECT_TRUE(upnp);
  EXPECT_TRUE(jini);
}

// --- Rate limiting (docs/chaos.md) -----------------------------------------

TEST_F(MonitorFixture, RateLimiterShedsAFloodingSourceButNotItsNeighbours) {
  MonitorConfig config;
  config.rate_limit_per_sec = 10.0;  // burst defaults to 20
  Monitor monitor(indiss_host, nullptr, config);
  monitor.scan_all();

  // 100 datagrams from one source in one instant: the burst passes, the
  // rest are shed before any translation work.
  auto flooder = other_host.udp_socket(0);
  for (int i = 0; i < 100; ++i) {
    flooder->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                     to_bytes("flood-" + std::to_string(i)));
  }
  scheduler.run_all();
  EXPECT_EQ(monitor.stats().seen, 20u);
  EXPECT_EQ(monitor.stats().rate_limited, 80u);

  // A well-behaved source on another address is untouched: buckets are
  // per-source, so the flooder cannot starve its neighbours.
  net::Host& polite = network.add_host("polite", net::IpAddress(10, 0, 0, 7));
  send_slp_request_from(polite);
  EXPECT_EQ(monitor.stats().seen, 21u);
  EXPECT_EQ(monitor.stats().rate_limited, 80u);
}

TEST_F(MonitorFixture, RateLimiterBucketsRefillOverTime) {
  MonitorConfig config;
  config.rate_limit_per_sec = 10.0;
  config.rate_limit_burst = 5.0;
  Monitor monitor(indiss_host, nullptr, config);
  monitor.scan_all();

  auto socket = other_host.udp_socket(0);
  auto burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                      to_bytes("x"));
    }
    scheduler.run_all();
  };
  burst(10);
  EXPECT_EQ(monitor.stats().seen, 5u);  // burst capacity
  scheduler.run_until(scheduler.now() + sim::seconds(1));  // refills 10 > cap 5
  burst(10);
  EXPECT_EQ(monitor.stats().seen, 10u);
}

TEST_F(MonitorFixture, TrackedSourcesAreBoundedAgainstAddressSpoofing) {
  MonitorConfig config;
  config.rate_limit_per_sec = 10.0;
  config.max_tracked_sources = 8;
  Monitor monitor(indiss_host, nullptr, config);
  monitor.scan_all();

  // 50 distinct spoofed sources: bucket state must stay at the cap (stalest
  // recycled), not grow per address.
  for (int i = 0; i < 50; ++i) {
    net::Host& host = network.add_host(
        "spoof" + std::to_string(i),
        net::IpAddress(10, 0, 1, static_cast<std::uint8_t>(i + 1)));
    auto socket = host.udp_socket(0);
    socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                    to_bytes("s"));
  }
  scheduler.run_all();
  EXPECT_LE(monitor.stats().sources_tracked, 8u);
  EXPECT_EQ(monitor.stats().seen, 50u);  // each new source starts full
}

TEST_F(MonitorFixture, ZeroRateConfigDisablesLimiting) {
  Monitor monitor(indiss_host);  // default config: no limiting
  monitor.scan_all();
  auto socket = other_host.udp_socket(0);
  for (int i = 0; i < 200; ++i) {
    socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                    to_bytes("x"));
  }
  scheduler.run_all();
  EXPECT_EQ(monitor.stats().seen, 200u);
  EXPECT_EQ(monitor.stats().rate_limited, 0u);
}

TEST_F(MonitorFixture, DetectionTimestampRecorded) {
  Monitor monitor(indiss_host);
  monitor.scan_all();
  scheduler.run_until(sim::millis(500));
  send_slp_request_from(other_host);
  auto it = monitor.detected().find(SdpId::kSlp);
  ASSERT_NE(it, monitor.detected().end());
  EXPECT_GE(it->second, sim::millis(500));
}

}  // namespace
}  // namespace indiss::core
