// Tests for the DFA engine: add_tuple, guards, actions, determinism
// enforcement and the paper's 5-tuple semantics.
#include <gtest/gtest.h>

#include "core/fsm.hpp"
#include "core/unit.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace indiss::core {
namespace {

// A minimal concrete unit so actions have a target.
struct TestUnit : Unit {
  explicit TestUnit(net::Host& host) : Unit(SdpId::kSlp, host) {}
  int requests_composed = 0;
  int replies_composed = 0;

 protected:
  void compose_native_request(Session&) override { ++requests_composed; }
  void compose_native_reply(Session&) override { ++replies_composed; }
};

struct FsmFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 1};
  net::Host& host = network.add_host("h", net::IpAddress(10, 0, 0, 1));
  TestUnit unit{host};
  Session session;

  FsmFixture() {
    session.id = 1;
    session.state = "idle";
  }
};

TEST_F(FsmFixture, TransitionFiresAndChangesState) {
  StateMachine fsm;
  fsm.set_start("idle");
  fsm.add_tuple("idle", EventType::kControlStart, any(), "parsing", {});
  EXPECT_TRUE(fsm_step(fsm, unit, session, Event(EventType::kControlStart)));
  EXPECT_EQ(session.state, "parsing");
}

TEST_F(FsmFixture, NoMatchingTransitionReturnsFalse) {
  StateMachine fsm;
  fsm.set_start("idle");
  fsm.add_tuple("idle", EventType::kControlStart, any(), "parsing", {});
  EXPECT_FALSE(fsm_step(fsm, unit, session, Event(EventType::kResOk)));
  EXPECT_EQ(session.state, "idle");
}

TEST_F(FsmFixture, GuardsSelectAmongTransitions) {
  StateMachine fsm;
  fsm.set_start("s");
  fsm.add_tuple("s", EventType::kControlStop,
                [](const Event&, const Session& s) {
                  return s.var("kind") == "request";
                },
                "requesting", {});
  fsm.add_tuple("s", EventType::kControlStop,
                [](const Event&, const Session& s) {
                  return s.var("kind") != "request";
                },
                "other", {});
  session.state = "s";
  session.set_var("kind", "request");
  fsm_step(fsm, unit, session, Event(EventType::kControlStop));
  EXPECT_EQ(session.state, "requesting");

  Session session2;
  session2.state = "s";
  fsm_step(fsm, unit, session2, Event(EventType::kControlStop));
  EXPECT_EQ(session2.state, "other");
}

TEST_F(FsmFixture, NondeterminismIsAnError) {
  StateMachine fsm;
  fsm.set_start("s");
  fsm.add_tuple("s", EventType::kControlStop, any(), "a", {});
  fsm.add_tuple("s", EventType::kControlStop, any(), "b", {});
  session.state = "s";
  EXPECT_THROW(fsm_step(fsm, unit, session, Event(EventType::kControlStop)),
               std::logic_error);
}

TEST_F(FsmFixture, ActionsRunInOrder) {
  StateMachine fsm;
  fsm.set_start("s");
  std::vector<int> order;
  fsm.add_tuple("s", EventType::kControlStart, any(), "t",
                {[&](Unit&, const Event&, Session&) { order.push_back(1); },
                 [&](Unit&, const Event&, Session&) { order.push_back(2); },
                 [&](Unit&, const Event&, Session&) { order.push_back(3); }});
  session.state = "s";
  fsm_step(fsm, unit, session, Event(EventType::kControlStart));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_F(FsmFixture, RecordActionCopiesEventData) {
  StateMachine fsm;
  fsm.set_start("s");
  fsm.add_tuple("s", EventType::kNetSourceAddr, any(), "s",
                {Unit::record("src_addr", "addr")});
  session.state = "s";
  fsm_step(fsm, unit, session,
           Event(EventType::kNetSourceAddr, {{"addr", "10.0.0.7"}}));
  EXPECT_EQ(session.var("src_addr"), "10.0.0.7");
}

TEST_F(FsmFixture, RecordSkipsMissingKeys) {
  StateMachine fsm;
  fsm.set_start("s");
  fsm.add_tuple("s", EventType::kNetSourceAddr, any(), "s",
                {Unit::record("src_addr", "addr")});
  session.state = "s";
  fsm_step(fsm, unit, session, Event(EventType::kNetSourceAddr));
  EXPECT_FALSE(session.has_var("src_addr"));
}

TEST_F(FsmFixture, SetActionWritesConstant) {
  StateMachine fsm;
  fsm.set_start("s");
  fsm.add_tuple("s", EventType::kServiceRequest, any(), "s",
                {Unit::set("kind", "request")});
  session.state = "s";
  fsm_step(fsm, unit, session, Event(EventType::kServiceRequest));
  EXPECT_EQ(session.var("kind"), "request");
}

TEST_F(FsmFixture, AcceptingStatesAndIntrospection) {
  StateMachine fsm;
  fsm.set_start("idle");
  fsm.add_accepting("done");
  fsm.add_tuple("idle", EventType::kControlStart, any(), "done", {});
  EXPECT_TRUE(fsm.is_accepting("done"));
  EXPECT_FALSE(fsm.is_accepting("idle"));
  EXPECT_EQ(fsm.transition_count(), 1u);
  auto states = fsm.states();
  EXPECT_TRUE(states.contains("idle"));
  EXPECT_TRUE(states.contains("done"));
}

TEST_F(FsmFixture, EmptyStateInitializedToStart) {
  StateMachine fsm;
  fsm.set_start("begin");
  fsm.add_tuple("begin", EventType::kControlStart, any(), "next", {});
  Session fresh;  // state empty
  fsm_step(fsm, unit, fresh, Event(EventType::kControlStart));
  EXPECT_EQ(fresh.state, "next");
}

}  // namespace
}  // namespace indiss::core
