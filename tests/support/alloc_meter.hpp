// Shared heap-allocation meter for tests and benchmarks.
//
// Replaces the global operator new/delete of the binary that includes it,
// counting every allocation (and its size) into indiss::testing counters so
// zero-allocation claims are pinned by tests instead of asserted in prose.
//
// Include from exactly ONE translation unit per binary: the replacement
// operators are deliberately non-inline, so a second including TU fails to
// link rather than silently double-counting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace indiss::testing {

// thread_local, not atomic: every consumer measures a same-thread
// before/after delta, so per-thread counters are exact where it matters and
// stay race-free when the multi-threaded shard tests allocate concurrently —
// without putting a lock-prefixed RMW into every operator new on the
// benchmarks' hot path. A thread only ever sees its own allocations; there
// is deliberately no cross-thread aggregate.
inline thread_local std::uint64_t g_heap_allocs = 0;  // operator new calls
inline thread_local std::uint64_t g_heap_bytes = 0;   // bytes requested

}  // namespace indiss::testing

void* operator new(std::size_t size) {
  indiss::testing::g_heap_allocs += 1;
  indiss::testing::g_heap_bytes += size;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  indiss::testing::g_heap_allocs += 1;
  indiss::testing::g_heap_bytes += size;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
