// Transport-conformance suite: the contract both backends must satisfy
// (transport/transport.hpp), run against the simulated LAN and the live
// epoll backend over loopback. Anything the units rely on — ephemeral
// binds, multicast join/fan-out, self-loop suppression, timer handle
// semantics, synchronous ECONNREFUSED — is pinned here so the two backends
// cannot drift apart.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "live/event_loop.hpp"
#include "live/transport.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "transport/transport.hpp"

namespace indiss {
namespace {

Bytes payload_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

/// One node under test plus the way to make its time pass. The sim backend
/// advances virtual time; the live backend burns real wall-clock (the suite
/// keeps windows in the tens of milliseconds).
class Backend {
 public:
  virtual ~Backend() = default;
  virtual transport::Transport& node() = 0;
  virtual void run_for(transport::Duration d) = 0;
};

class SimBackend : public Backend {
 public:
  SimBackend()
      : network_(scheduler_),
        host_(network_.add_host("node", net::IpAddress(10, 0, 0, 1))) {}
  transport::Transport& node() override { return host_; }
  void run_for(transport::Duration d) override { scheduler_.run_for(d); }

 private:
  sim::Scheduler scheduler_;
  net::Network network_;
  net::Host& host_;
};

class LiveBackend : public Backend {
 public:
  LiveBackend() : transport_(loop_) {}
  transport::Transport& node() override { return transport_; }
  void run_for(transport::Duration d) override { loop_.run_for(d); }

 private:
  live::EventLoop loop_;
  live::LiveTransport transport_;
};

class ConformanceTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string_view(GetParam()) == "sim") {
      backend_ = std::make_unique<SimBackend>();
    } else {
      backend_ = std::make_unique<LiveBackend>();
    }
  }

  transport::Transport& node() { return backend_->node(); }
  void run_for(transport::Duration d) { backend_->run_for(d); }

  std::unique_ptr<Backend> backend_;
};

TEST_P(ConformanceTest, EphemeralUdpBindsDistinctNonzeroPorts) {
  auto a = node().open_udp(0);
  auto b = node().open_udp(0);
  EXPECT_NE(a->local_endpoint().port, 0);
  EXPECT_NE(b->local_endpoint().port, 0);
  EXPECT_NE(a->local_endpoint().port, b->local_endpoint().port);
  EXPECT_EQ(a->local_endpoint().address, node().address());
  EXPECT_FALSE(a->closed());
  a->close();
  EXPECT_TRUE(a->closed());
}

TEST_P(ConformanceTest, UdpUnicastDeliversOnNode) {
  auto a = node().open_udp(0);
  auto b = node().open_udp(0);
  std::vector<net::Datagram> got;
  b->set_receive_handler(
      [&](const net::Datagram& d) { got.push_back(d); });

  a->send_to(b->local_endpoint(), payload_of("hello"));
  run_for(transport::millis(50));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].source, a->local_endpoint());
  EXPECT_FALSE(got[0].multicast);
  EXPECT_EQ(got[0].payload, payload_of("hello"));
}

TEST_P(ConformanceTest, MulticastJoinFansOutToEveryMemberButNotSender) {
  const net::IpAddress group(239, 255, 77, 77);
  const std::uint16_t port = 45454;

  auto r1 = node().open_udp(port);
  r1->join_group(group);
  auto r2 = node().open_udp(port);
  r2->join_group(group);
  auto sender = node().open_udp(0);

  std::vector<net::Datagram> got1;
  std::vector<net::Datagram> got2;
  r1->set_receive_handler([&](const net::Datagram& d) { got1.push_back(d); });
  r2->set_receive_handler([&](const net::Datagram& d) { got2.push_back(d); });

  sender->send_to(net::Endpoint{group, port}, payload_of("announce"));
  run_for(transport::millis(50));

  ASSERT_EQ(got1.size(), 1u);
  ASSERT_EQ(got2.size(), 1u);
  EXPECT_TRUE(got1[0].multicast);
  EXPECT_EQ(got1[0].destination, (net::Endpoint{group, port}));
  EXPECT_EQ(got1[0].source, sender->local_endpoint());
  EXPECT_EQ(got2[0].payload, payload_of("announce"));

  // After leaving, group traffic stops arriving.
  r2->leave_group(group);
  sender->send_to(net::Endpoint{group, port}, payload_of("again"));
  run_for(transport::millis(50));
  EXPECT_EQ(got1.size(), 2u);
  EXPECT_EQ(got2.size(), 1u);
}

TEST_P(ConformanceTest, MulticastSendNeverLoopsBackToSender) {
  const net::IpAddress group(239, 255, 77, 78);
  const std::uint16_t port = 45455;

  auto socket = node().open_udp(port);
  socket->join_group(group);
  std::vector<net::Datagram> got;
  socket->set_receive_handler(
      [&](const net::Datagram& d) { got.push_back(d); });

  socket->send_to(net::Endpoint{group, port}, payload_of("self"));
  run_for(transport::millis(50));

  EXPECT_TRUE(got.empty());
}

TEST_P(ConformanceTest, OneShotTimersFireInDeadlineOrder) {
  std::vector<int> order;
  auto late = node().schedule(transport::millis(20), [&]() {
    order.push_back(2);
  });
  auto early = node().schedule(transport::millis(5), [&]() {
    order.push_back(1);
  });
  EXPECT_TRUE(late.pending());
  EXPECT_TRUE(early.pending());

  run_for(transport::millis(60));

  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
  // Fired handles go inert: not pending, and cancel() is a no-op.
  EXPECT_FALSE(late.pending());
  late.cancel();
}

TEST_P(ConformanceTest, CancelledTimerNeverFires) {
  int fired = 0;
  auto handle = node().schedule(transport::millis(10), [&]() { fired += 1; });
  handle.cancel();
  EXPECT_FALSE(handle.pending());

  run_for(transport::millis(40));
  EXPECT_EQ(fired, 0);
}

TEST_P(ConformanceTest, PeriodicTimerRepeatsUntilCancelled) {
  int ticks = 0;
  auto handle =
      node().schedule_periodic(transport::millis(10), [&]() { ticks += 1; });

  run_for(transport::millis(35));
  EXPECT_GE(ticks, 2);
  EXPECT_LE(ticks, 4);

  handle.cancel();
  int at_cancel = ticks;
  run_for(transport::millis(30));
  EXPECT_EQ(ticks, at_cancel);
}

TEST_P(ConformanceTest, ConnectToClosedPortReturnsNull) {
  auto listener = node().listen_tcp(0);
  std::uint16_t port = listener->port();
  ASSERT_NE(port, 0);
  listener->close();
  run_for(transport::millis(10));

  auto socket = node().connect_tcp(net::Endpoint{node().address(), port});
  EXPECT_EQ(socket, nullptr);
}

TEST_P(ConformanceTest, TcpRoundTripAndCloseNotification) {
  auto listener = node().listen_tcp(0);
  std::shared_ptr<transport::TcpSocket> server;
  listener->set_accept_handler(
      [&](std::shared_ptr<transport::TcpSocket> socket) {
        server = std::move(socket);
      });

  auto client =
      node().connect_tcp(net::Endpoint{node().address(), listener->port()});
  ASSERT_NE(client, nullptr);
  run_for(transport::millis(50));
  ASSERT_NE(server, nullptr);

  Bytes server_got;
  bool server_closed = false;
  server->set_data_handler([&](BytesView data) {
    server_got.insert(server_got.end(), data.begin(), data.end());
  });
  server->set_close_handler([&]() { server_closed = true; });
  Bytes client_got;
  client->set_data_handler([&](BytesView data) {
    client_got.insert(client_got.end(), data.begin(), data.end());
  });

  client->send(payload_of("ping"));
  run_for(transport::millis(50));
  EXPECT_EQ(server_got, payload_of("ping"));

  server->send(payload_of("pong"));
  run_for(transport::millis(50));
  EXPECT_EQ(client_got, payload_of("pong"));

  client->close();
  run_for(transport::millis(50));
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(client->open());
}

TEST_P(ConformanceTest, TimeAdvancesAcrossRun) {
  transport::TimePoint before = node().now();
  run_for(transport::millis(20));
  EXPECT_GE(node().now() - before, transport::millis(20));
}

INSTANTIATE_TEST_SUITE_P(Backends, ConformanceTest,
                         ::testing::Values("sim", "live"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace indiss
