// UPnP stack tests: SSDP message round trips, description documents, root
// device behaviour and control-point discovery.
#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "upnp/control_point.hpp"
#include "upnp/description.hpp"
#include "upnp/device.hpp"
#include "upnp/http_client.hpp"
#include "upnp/ssdp.hpp"

namespace indiss::upnp {
namespace {

TEST(Ssdp, SearchRequestRoundTrip) {
  SearchRequest request;
  request.st = "urn:schemas-upnp-org:device:clock:1";
  request.mx = 2;
  auto parsed = parse_ssdp(to_bytes(request.to_http().serialize()));
  ASSERT_TRUE(parsed.has_value());
  auto* req = std::get_if<SearchRequest>(&*parsed);
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->st, request.st);
  EXPECT_EQ(req->mx, 2);
}

TEST(Ssdp, SearchResponseRoundTrip) {
  SearchResponse response;
  response.st = "upnp:clock";
  response.usn = "uuid:ClockDevice::upnp:clock";
  response.location = "http://128.93.8.112:4004/description.xml";
  response.max_age_seconds = 900;
  auto parsed = parse_ssdp(to_bytes(response.to_http().serialize()));
  ASSERT_TRUE(parsed.has_value());
  auto* rsp = std::get_if<SearchResponse>(&*parsed);
  ASSERT_NE(rsp, nullptr);
  EXPECT_EQ(rsp->location, response.location);
  EXPECT_EQ(rsp->max_age_seconds, 900);
}

TEST(Ssdp, NotifyAliveAndByeByeRoundTrip) {
  Notify alive;
  alive.kind = Notify::Kind::kAlive;
  alive.nt = "urn:schemas-upnp-org:device:clock:1";
  alive.usn = "uuid:X::" + alive.nt;
  alive.location = "http://10.0.0.2:4004/description.xml";
  auto parsed = parse_ssdp(to_bytes(alive.to_http().serialize()));
  auto* a = std::get_if<Notify>(&*parsed);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->kind, Notify::Kind::kAlive);
  EXPECT_EQ(a->location, alive.location);

  Notify bye = alive;
  bye.kind = Notify::Kind::kByeBye;
  auto parsed2 = parse_ssdp(to_bytes(bye.to_http().serialize()));
  auto* b = std::get_if<Notify>(&*parsed2);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->kind, Notify::Kind::kByeBye);
}

TEST(Ssdp, RejectsNonSsdpTraffic) {
  EXPECT_FALSE(parse_ssdp(to_bytes("GET / HTTP/1.1\r\n\r\n")).has_value());
  EXPECT_FALSE(parse_ssdp(to_bytes("binary\x01\x02garbage")).has_value());
}

TEST(Description, XmlRoundTripPreservesEverything) {
  DeviceDescription device = make_clock_device();
  auto xml = device.to_xml();
  auto parsed = DeviceDescription::from_xml(xml);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, device);
}

TEST(Description, RejectsMissingMandatoryFields) {
  EXPECT_FALSE(DeviceDescription::from_xml("<root><device/></root>")
                   .has_value());
  EXPECT_FALSE(DeviceDescription::from_xml("not xml").has_value());
}

TEST(Description, UsnForms) {
  auto device = make_clock_device("uuid:X");
  EXPECT_EQ(device.usn_for("uuid:X"), "uuid:X");
  EXPECT_EQ(device.usn_for(device.device_type),
            "uuid:X::" + device.device_type);
}

struct UpnpFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 1};
  net::Host& client_host = network.add_host("cp", net::IpAddress(10, 0, 0, 1));
  net::Host& device_host = network.add_host("dev", net::IpAddress(10, 0, 0, 2));
};

TEST_F(UpnpFixture, DeviceAnswersMatchingSearch) {
  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  scheduler.run_for(sim::millis(10));  // let the alive burst drain

  ControlPoint cp(client_host);
  std::vector<SearchResponse> responses;
  cp.search("urn:schemas-upnp-org:device:clock:1",
            [&](const SearchResponse& r) { responses.push_back(r); }, nullptr,
            nullptr);
  scheduler.run_for(sim::seconds(1));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].location,
            "http://10.0.0.2:4004/description.xml");
  EXPECT_EQ(device.msearches_seen(), 1u);
}

TEST_F(UpnpFixture, SearchResponseTakesAboutStackDelay) {
  // Fig 7's UPnP reference: device-side M-SEARCH handling dominates.
  RootDevice device(device_host, make_clock_device(), 4004);
  device.profile().msearch_handling = sim::millis(30);
  device.start();
  scheduler.run_for(sim::millis(10));

  ControlPoint cp(client_host);
  sim::SimTime started = scheduler.now();
  sim::SimTime answered{};
  cp.search("ssdp:all",
            [&](const SearchResponse&) { answered = scheduler.now(); },
            nullptr, nullptr);
  scheduler.run_for(sim::seconds(1));
  ASSERT_GT(answered.count(), 0);
  double ms = sim::to_millis(answered - started);
  EXPECT_GT(ms, 29.0);
  EXPECT_LT(ms, 35.0);
}

TEST_F(UpnpFixture, NonMatchingTargetIgnored) {
  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  scheduler.run_for(sim::millis(10));
  ControlPoint cp(client_host);
  int responses = 0;
  cp.search("urn:schemas-upnp-org:device:printer:1",
            [&](const SearchResponse&) { ++responses; }, nullptr, nullptr);
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(responses, 0);
  EXPECT_EQ(device.responses_sent(), 0u);
}

TEST_F(UpnpFixture, ControlPointFetchesDescription) {
  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  scheduler.run_for(sim::millis(10));
  ControlPoint cp(client_host);
  std::optional<DiscoveredDevice> found;
  cp.search("ssdp:all", nullptr,
            [&](const DiscoveredDevice& d) { found = d; }, nullptr);
  scheduler.run_for(sim::seconds(2));
  ASSERT_TRUE(found.has_value());
  ASSERT_TRUE(found->description.has_value());
  EXPECT_EQ(found->description->friendly_name, "CyberGarage Clock Device");
  ASSERT_EQ(found->description->services.size(), 1u);
  EXPECT_EQ(found->description->services[0].control_url,
            "/service/timer/control");
}

TEST_F(UpnpFixture, PassiveListeningHearsAliveAndByeBye) {
  ControlPoint cp(client_host);
  std::vector<std::string> alive_usns;
  std::vector<std::string> byebye_usns;
  cp.enable_passive_listening(
      [&](const DiscoveredDevice& d) { alive_usns.push_back(d.response.usn); },
      [&](const Notify& n) { byebye_usns.push_back(n.usn); });

  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  scheduler.run_for(sim::seconds(1));
  EXPECT_FALSE(alive_usns.empty());
  device.stop();
  scheduler.run_for(sim::seconds(1));
  EXPECT_FALSE(byebye_usns.empty());
}

TEST_F(UpnpFixture, StoppedDeviceIsSilent) {
  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  scheduler.run_for(sim::millis(10));
  device.stop();
  scheduler.run_for(sim::millis(10));

  ControlPoint cp(client_host);
  int responses = 0;
  cp.search("ssdp:all", [&](const SearchResponse&) { ++responses; }, nullptr,
            nullptr);
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(responses, 0);
}

TEST_F(UpnpFixture, SearchCompleteDeliversAllDevices) {
  RootDevice d1(device_host, make_clock_device("uuid:A"), 4004);
  net::Host& h2 = network.add_host("dev2", net::IpAddress(10, 0, 0, 3));
  RootDevice d2(h2, make_clock_device("uuid:B"), 4004);
  d1.start();
  d2.start();
  scheduler.run_for(sim::millis(10));

  ControlPoint cp(client_host);
  std::vector<DiscoveredDevice> all;
  cp.search("ssdp:all", nullptr, nullptr,
            [&](const std::vector<DiscoveredDevice>& devices) {
              all = devices;
            });
  scheduler.run_for(sim::seconds(2));
  EXPECT_EQ(all.size(), 2u);
}

TEST_F(UpnpFixture, HttpGetAgainstDeviceServer) {
  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  std::optional<http::HttpMessage> response;
  http_get(client_host,
           *Uri::parse("http://10.0.0.2:4004/description.xml"),
           [&](std::optional<http::HttpMessage> r) { response = std::move(r); });
  scheduler.run_for(sim::seconds(1));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 200);
  EXPECT_TRUE(DeviceDescription::from_xml(response->body).has_value());
}

TEST_F(UpnpFixture, HttpGet404ForUnknownPath) {
  RootDevice device(device_host, make_clock_device(), 4004);
  device.start();
  std::optional<http::HttpMessage> response;
  http_get(client_host, *Uri::parse("http://10.0.0.2:4004/nope"),
           [&](std::optional<http::HttpMessage> r) { response = std::move(r); });
  scheduler.run_for(sim::seconds(1));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
}

TEST_F(UpnpFixture, HttpGetConnectionRefusedReportsFailure) {
  bool called = false;
  std::optional<http::HttpMessage> response;
  http_get(client_host, *Uri::parse("http://10.0.0.2:4004/description.xml"),
           [&](std::optional<http::HttpMessage> r) {
             called = true;
             response = std::move(r);
           });
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(called);
  EXPECT_FALSE(response.has_value());
}

}  // namespace
}  // namespace indiss::upnp
