// Steady-state allocation pins for the SLP, SSDP and Jini translation round
// trips — the PR-2/PR-4 zero-alloc guarantee (pinned for mDNS in
// tests/sdp/mdns_test.cpp) extended to all four SDPs: parse -> events ->
// compose -> wire must perform no heap allocation once every scratch buffer
// has reached its high-water capacity.
#include <gtest/gtest.h>

#include "core/directory/service_directory.hpp"
#include "core/units/jini_unit.hpp"
#include "core/units/mdns_unit.hpp"
#include "core/units/slp_unit.hpp"
#include "core/units/upnp_unit.hpp"
#include "jini/discovery.hpp"
#include "jini/lookup.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "slp/wire.hpp"
#include "upnp/ssdp.hpp"

#include "tests/support/alloc_meter.hpp"

namespace indiss::core {
namespace {

MessageContext multicast_ctx() {
  MessageContext ctx;
  ctx.source = net::Endpoint{net::IpAddress(10, 0, 0, 7), 41000};
  ctx.multicast = true;
  return ctx;
}

// --- SLP --------------------------------------------------------------------

TEST(SlpAllocs, ReplyParseComposeRoundTripIsZeroAllocSteadyState) {
  slp::SrvRply reply;
  reply.header.xid = 42;
  reply.url_entries = {
      slp::UrlEntry{300, "service:clock:soap://10.0.0.2:4005/control"},
      slp::UrlEntry{300, "service:clock:soap://10.0.0.3:4005/control"}};
  Bytes wire = slp::encode(slp::Message(reply));

  SlpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();
  slp::Message composed = slp::SrvRply{};
  std::string attr_scratch;
  ByteWriter writer;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    compose_slp_reply(sink.stream(), "clock", 42, 300, true,
                      std::get<slp::SrvRply>(composed), attr_scratch);
    slp::encode_into(composed, writer);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    std::size_t urls =
        compose_slp_reply(sink.stream(), "clock", 42, 300, true,
                          std::get<slp::SrvRply>(composed), attr_scratch);
    ASSERT_EQ(urls, 2u);
    BytesView out = slp::encode_into(composed, writer);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm SLP parse -> events -> compose must not allocate";
}

TEST(SlpAllocs, RegistrationParseWithAttributesIsZeroAllocSteadyState) {
  slp::SrvReg reg;
  reg.url_entry = {120, "service:clock:soap://10.0.0.2:4005/slp-clock"};
  reg.service_type = "service:clock";
  reg.attr_list = "(friendlyName=SLP Clock),(room=hall),ready";
  Bytes wire = slp::encode(slp::Message(reg));

  SlpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(well_framed(sink.stream()));
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm SLP registration parse must not allocate";
}

// --- SSDP -------------------------------------------------------------------

// Fills the scratch notify from a parsed alive stream the way the UPnP
// composer re-announces it, reusing the struct's string capacity.
void fill_notify_from(const EventStream& stream, upnp::Notify& notify) {
  notify.kind = upnp::Notify::Kind::kAlive;
  for (const auto& event : stream) {
    if (event.type == EventType::kServiceByeBye) {
      notify.kind = upnp::Notify::Kind::kByeBye;
    } else if (event.type == EventType::kServiceTypeIs) {
      notify.nt.assign(event.get("native"));
    } else if (event.type == EventType::kUpnpUsn) {
      notify.usn.assign(event.get("usn"));
    } else if (event.type == EventType::kUpnpDeviceUrlDesc) {
      notify.location.assign(event.get("url"));
    }
  }
}

TEST(SsdpAllocs, NotifyParseComposeRoundTripIsZeroAllocSteadyState) {
  upnp::Notify notify;
  notify.nt = "urn:schemas-upnp-org:device:clock:1";
  notify.usn = "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1";
  notify.location = "http://10.0.0.2:4004/description.xml";
  Bytes wire = to_bytes(notify.to_http().serialize());

  SsdpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();
  upnp::Notify composed;
  std::string out;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    fill_notify_from(sink.stream(), composed);
    composed.serialize_into(out);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(well_framed(sink.stream()));
    ASSERT_NE(find_event(sink.stream(), EventType::kServiceAlive), nullptr);
    fill_notify_from(sink.stream(), composed);
    composed.serialize_into(out);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm SSDP parse -> events -> compose must not allocate";
}

TEST(SsdpAllocs, SearchRequestParseIsZeroAllocSteadyState) {
  upnp::SearchRequest request;
  request.st = "urn:schemas-upnp-org:device:clock:1";
  Bytes wire = to_bytes(request.to_http().serialize());

  SsdpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_NE(find_event(sink.stream(), EventType::kUpnpSearchTarget),
              nullptr);
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm M-SEARCH parse must not allocate";
}

// --- Jini -------------------------------------------------------------------

TEST(JiniAllocs, AnnouncementParseComposeRoundTripIsZeroAllocSteadyState) {
  jini::MulticastAnnouncement announcement;
  announcement.registrar_host = "10.0.0.9";
  announcement.registrar_port = 4160;
  announcement.registrar_id = 0x1D155C0FFEEULL;  // > SSO digit budget
  announcement.groups = {"lab"};
  Bytes wire = announcement.encode();

  JiniEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();
  jini::MulticastAnnouncement composed;
  ByteWriter writer;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(compose_jini_announcement(sink.stream(), composed));
    composed.encode_into(writer);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(compose_jini_announcement(sink.stream(), composed));
    BytesView out = composed.encode_into(writer);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm Jini parse -> events -> compose must not allocate";
  EXPECT_EQ(composed.registrar_id, announcement.registrar_id);
  EXPECT_EQ(composed.registrar_host, announcement.registrar_host);
}

// --- Service directory (PR 9) ----------------------------------------------

TEST(DirectoryAllocs, RefreshTouchAndCollectAreZeroAllocSteadyState) {
  ServiceDirectory dir;
  EventStream advert;
  advert.push_back(Event(EventType::kControlStart));
  advert.push_back(Event(EventType::kServiceAlive));
  advert.push_back(Event(EventType::kServiceTypeIs, {{"type", "clock"}}));
  advert.push_back(Event(EventType::kResTtl, {{"seconds", "600"}}));
  advert.push_back(Event(EventType::kServiceAttr,
                         {{"key", "friendlyName"}, {"value", "Alloc Clock"}}));
  advert.push_back(Event(
      EventType::kResServUrl,
      {{"url", "service:clock:soap://10.0.0.2:4005/alloc-clock"}}));
  advert.push_back(Event(EventType::kControlStop));
  Bytes wire = to_bytes("SRVREG alloc-clock (byte-identical repeat)");

  auto at = [](int s) { return transport::TimePoint(transport::seconds(s)); };
  ASSERT_TRUE(dir.record_advertisement(SdpId::kSlp, advert, wire, at(0)));
  std::vector<const ServiceDirectory::Record*> matches;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(dir.record_advertisement(SdpId::kSlp, advert, wire, at(i)));
    ASSERT_TRUE(dir.touch(SdpId::kSlp, wire, at(i)));
    ASSERT_EQ(dir.collect("clock", at(i), matches), 1u);
    ASSERT_TRUE(dir.has_fresh("clock", at(i)));
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(dir.record_advertisement(SdpId::kSlp, advert, wire, at(i)));
    ASSERT_TRUE(dir.touch(SdpId::kSlp, wire, at(i)));
    ASSERT_EQ(dir.collect("clock", at(i), matches), 1u);
    ASSERT_TRUE(dir.has_fresh("clock", at(i)));
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm directory refresh/touch/collect must not allocate";
  EXPECT_EQ(dir.size(), 1u);
  EXPECT_EQ(dir.stats(SdpId::kSlp).records_stored, 1u);
}

// --- Unit bridged-state refresh paths (PR 9 symbol re-keying) ---------------
//
// The units' foreign-state containers key on interned Symbols so the
// alive-refresh path — the steady-state case for a chatty announcer — only
// re-arms TTL clocks. A hand-built peer session drives the protected
// on_advertisement hook directly, the way deliver_advertisement does.

Session foreign_alive_session(std::string_view type, std::string_view url,
                              std::string_view usn = "") {
  Session session;
  session.id = 1;
  session.origin = Session::Origin::kPeer;
  session.set_var("kind", "alive");
  session.set_var("service_type", type);
  session.collected.push_back(Event(EventType::kControlStart));
  session.collected.push_back(Event(EventType::kServiceAlive));
  session.collected.push_back(
      Event(EventType::kServiceTypeIs, {{"type", type}}));
  session.collected.push_back(Event(EventType::kResTtl, {{"seconds", "60"}}));
  if (!usn.empty()) {
    session.collected.push_back(Event(EventType::kUpnpUsn, {{"usn", usn}}));
  }
  session.collected.push_back(Event(
      EventType::kServiceAttr,
      {{"key", "friendlyName"}, {"value", "Alloc Clock"}}));
  session.collected.push_back(Event(EventType::kResServUrl, {{"url", url}}));
  session.collected.push_back(Event(EventType::kControlStop));
  return session;
}

struct TestMdnsUnit : MdnsUnit {
  using MdnsUnit::MdnsUnit;
  using MdnsUnit::on_advertisement;
};

TEST(MdnsAllocs, ForeignAliveRefreshIsZeroAllocSteadyState) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 7};
  net::Host& host = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  TestMdnsUnit unit(host);
  Session session = foreign_alive_session(
      "clock", "service:clock:soap://10.0.0.2:4005/alloc-clock");

  unit.on_advertisement(session);  // first announcement builds the mirror
  scheduler.run_for(sim::millis(10));
  ASSERT_EQ(unit.foreign_services().size(), 1u);
  for (int i = 0; i < 16; ++i) unit.on_advertisement(session);

  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) unit.on_advertisement(session);
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm mDNS alive refresh must not allocate";
  EXPECT_EQ(unit.foreign_services().size(), 1u);
}

// The contested-airwaves extension of the same pin: with RFC 6762 §8 probing
// enabled, the first advertisement funds the probe cycle (claim bookkeeping,
// probe frames, the deferred announcement), but once the name is established
// the alive-refresh path must be as silent as the probe-less one — re-checking
// the claim and the name-override table costs no heap traffic.
TEST(MdnsAllocs, PostProbeAnnouncePathIsZeroAllocSteadyState) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 7};
  net::Host& host = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  MdnsUnitConfig config;
  config.probe = true;
  TestMdnsUnit unit(host, config);
  Session session = foreign_alive_session(
      "clock", "service:clock:soap://10.0.0.2:4005/alloc-clock");

  unit.on_advertisement(session);  // starts the §8.1 probe cycle
  EXPECT_EQ(unit.announcements_sent(), 0u)
      << "no announcing before the name is won";
  scheduler.run_for(sim::seconds(2));  // 3 unanswered probes -> established
  ASSERT_GE(unit.announcements_sent(), 1u);
  ASSERT_EQ(unit.probe_stats().names_established, 1u);
  for (int i = 0; i < 16; ++i) unit.on_advertisement(session);
  scheduler.run_for(sim::millis(100));

  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) unit.on_advertisement(session);
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm post-probe alive refresh must not allocate";
  EXPECT_EQ(unit.probe_stats().renames, 0u);
  EXPECT_EQ(unit.foreign_services().size(), 1u);
}

struct TestUpnpUnit : UpnpUnit {
  using UpnpUnit::UpnpUnit;
  using UpnpUnit::on_advertisement;
};

TEST(UpnpAllocs, ForeignAliveRefreshIsZeroAllocSteadyState) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 7};
  net::Host& host = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  TestUpnpUnit unit(host);  // active_advertising off: refresh is bookkeeping
  Session session = foreign_alive_session(
      "clock", "service:clock:soap://10.0.0.2:4005/alloc-clock");

  unit.on_advertisement(session);  // first advert builds the impersonation
  scheduler.run_for(sim::millis(10));
  for (int i = 0; i < 16; ++i) unit.on_advertisement(session);

  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) unit.on_advertisement(session);
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm UPnP alive refresh must not allocate";
}

struct TestJiniUnit : JiniUnit {
  using JiniUnit::JiniUnit;
  using JiniUnit::on_advertisement;
};

TEST(JiniAllocs, ForeignAliveRefreshIsZeroAllocSteadyState) {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 7};
  net::Host& gateway = network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& registrar = network.add_host("reg", net::IpAddress(10, 0, 0, 9));
  jini::LookupService lookup(registrar);
  TestJiniUnit unit(gateway);

  // The unit learns the registrar the way the monitor delivers it: a
  // multicast announcement through on_native_message.
  jini::MulticastAnnouncement announcement;
  announcement.registrar_host = "10.0.0.9";
  announcement.registrar_port = jini::kJiniPort;
  announcement.registrar_id = lookup.registrar_id();
  net::Datagram datagram;
  datagram.source = net::Endpoint{net::IpAddress(10, 0, 0, 9), jini::kJiniPort};
  datagram.destination = net::Endpoint{net::IpAddress(224, 0, 1, 84), 4160};
  datagram.multicast = true;
  datagram.payload = announcement.encode();
  unit.on_native_message(datagram);
  scheduler.run_for(sim::millis(100));

  Session session = foreign_alive_session(
      "clock", "service:clock:soap://10.0.0.2:4005/alloc-clock");
  unit.on_advertisement(session);  // first advert registers with the lookup
  scheduler.run_for(sim::millis(100));
  ASSERT_EQ(unit.foreign_registrations(), 1u);
  for (int i = 0; i < 16; ++i) unit.on_advertisement(session);

  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) unit.on_advertisement(session);
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm Jini alive refresh must not allocate";
  EXPECT_EQ(unit.foreign_registrations(), 1u)
      << "refreshes must not re-register at the registrar";
}

}  // namespace
}  // namespace indiss::core
