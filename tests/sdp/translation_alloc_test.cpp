// Steady-state allocation pins for the SLP, SSDP and Jini translation round
// trips — the PR-2/PR-4 zero-alloc guarantee (pinned for mDNS in
// tests/sdp/mdns_test.cpp) extended to all four SDPs: parse -> events ->
// compose -> wire must perform no heap allocation once every scratch buffer
// has reached its high-water capacity.
#include <gtest/gtest.h>

#include "core/units/jini_unit.hpp"
#include "core/units/slp_unit.hpp"
#include "core/units/upnp_unit.hpp"
#include "jini/discovery.hpp"
#include "slp/wire.hpp"
#include "upnp/ssdp.hpp"

#include "tests/support/alloc_meter.hpp"

namespace indiss::core {
namespace {

MessageContext multicast_ctx() {
  MessageContext ctx;
  ctx.source = net::Endpoint{net::IpAddress(10, 0, 0, 7), 41000};
  ctx.multicast = true;
  return ctx;
}

// --- SLP --------------------------------------------------------------------

TEST(SlpAllocs, ReplyParseComposeRoundTripIsZeroAllocSteadyState) {
  slp::SrvRply reply;
  reply.header.xid = 42;
  reply.url_entries = {
      slp::UrlEntry{300, "service:clock:soap://10.0.0.2:4005/control"},
      slp::UrlEntry{300, "service:clock:soap://10.0.0.3:4005/control"}};
  Bytes wire = slp::encode(slp::Message(reply));

  SlpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();
  slp::Message composed = slp::SrvRply{};
  std::string attr_scratch;
  ByteWriter writer;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    compose_slp_reply(sink.stream(), "clock", 42, 300, true,
                      std::get<slp::SrvRply>(composed), attr_scratch);
    slp::encode_into(composed, writer);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    std::size_t urls =
        compose_slp_reply(sink.stream(), "clock", 42, 300, true,
                          std::get<slp::SrvRply>(composed), attr_scratch);
    ASSERT_EQ(urls, 2u);
    BytesView out = slp::encode_into(composed, writer);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm SLP parse -> events -> compose must not allocate";
}

TEST(SlpAllocs, RegistrationParseWithAttributesIsZeroAllocSteadyState) {
  slp::SrvReg reg;
  reg.url_entry = {120, "service:clock:soap://10.0.0.2:4005/slp-clock"};
  reg.service_type = "service:clock";
  reg.attr_list = "(friendlyName=SLP Clock),(room=hall),ready";
  Bytes wire = slp::encode(slp::Message(reg));

  SlpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(well_framed(sink.stream()));
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm SLP registration parse must not allocate";
}

// --- SSDP -------------------------------------------------------------------

// Fills the scratch notify from a parsed alive stream the way the UPnP
// composer re-announces it, reusing the struct's string capacity.
void fill_notify_from(const EventStream& stream, upnp::Notify& notify) {
  notify.kind = upnp::Notify::Kind::kAlive;
  for (const auto& event : stream) {
    if (event.type == EventType::kServiceByeBye) {
      notify.kind = upnp::Notify::Kind::kByeBye;
    } else if (event.type == EventType::kServiceTypeIs) {
      notify.nt.assign(event.get("native"));
    } else if (event.type == EventType::kUpnpUsn) {
      notify.usn.assign(event.get("usn"));
    } else if (event.type == EventType::kUpnpDeviceUrlDesc) {
      notify.location.assign(event.get("url"));
    }
  }
}

TEST(SsdpAllocs, NotifyParseComposeRoundTripIsZeroAllocSteadyState) {
  upnp::Notify notify;
  notify.nt = "urn:schemas-upnp-org:device:clock:1";
  notify.usn = "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1";
  notify.location = "http://10.0.0.2:4004/description.xml";
  Bytes wire = to_bytes(notify.to_http().serialize());

  SsdpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();
  upnp::Notify composed;
  std::string out;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    fill_notify_from(sink.stream(), composed);
    composed.serialize_into(out);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(well_framed(sink.stream()));
    ASSERT_NE(find_event(sink.stream(), EventType::kServiceAlive), nullptr);
    fill_notify_from(sink.stream(), composed);
    composed.serialize_into(out);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm SSDP parse -> events -> compose must not allocate";
}

TEST(SsdpAllocs, SearchRequestParseIsZeroAllocSteadyState) {
  upnp::SearchRequest request;
  request.st = "urn:schemas-upnp-org:device:clock:1";
  Bytes wire = to_bytes(request.to_http().serialize());

  SsdpEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_NE(find_event(sink.stream(), EventType::kUpnpSearchTarget),
              nullptr);
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm M-SEARCH parse must not allocate";
}

// --- Jini -------------------------------------------------------------------

TEST(JiniAllocs, AnnouncementParseComposeRoundTripIsZeroAllocSteadyState) {
  jini::MulticastAnnouncement announcement;
  announcement.registrar_host = "10.0.0.9";
  announcement.registrar_port = 4160;
  announcement.registrar_id = 0x1D155C0FFEEULL;  // > SSO digit budget
  announcement.groups = {"lab"};
  Bytes wire = announcement.encode();

  JiniEventParser parser;
  StreamPool pool;
  CollectingSink sink(pool);
  MessageContext ctx = multicast_ctx();
  jini::MulticastAnnouncement composed;
  ByteWriter writer;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(compose_jini_announcement(sink.stream(), composed));
    composed.encode_into(writer);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    ASSERT_TRUE(compose_jini_announcement(sink.stream(), composed));
    BytesView out = composed.encode_into(writer);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm Jini parse -> events -> compose must not allocate";
  EXPECT_EQ(composed.registrar_id, announcement.registrar_id);
  EXPECT_EQ(composed.registrar_host, announcement.registrar_host);
}

}  // namespace
}  // namespace indiss::core
