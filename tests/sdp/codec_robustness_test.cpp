// Codec-robustness sweep shared by all four SDPs.
//
// Every golden packet of every protocol is fed to its wire decoder and its
// event parser in three corrupted families — truncated at every length,
// bit-flipped (seeded, deterministic), and length-field-corrupted (every
// byte position forced to 0x00 / 0xFF / a seeded random value) — and the
// decode must fail or succeed *cleanly*: no crash, no UB (this suite runs
// under the ASan/UBSan CI job), and every event parser must still deliver a
// START..STOP-framed stream (or end on a parser switch), because malformed
// network input reaching a unit must degrade to SDP_RES_ERR, never take the
// system down.
//
// Determinism: corruption draws come from sim::Random with fixed seeds —
// no wall clock, no global RNG state.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/units/jini_unit.hpp"
#include "core/units/mdns_unit.hpp"
#include "core/units/slp_unit.hpp"
#include "core/units/upnp_unit.hpp"
#include "jini/discovery.hpp"
#include "mdns/dns.hpp"
#include "sim/random.hpp"
#include "slp/wire.hpp"
#include "upnp/description.hpp"
#include "upnp/ssdp.hpp"

namespace indiss {
namespace {

using core::EventType;

// --- Golden packets ---------------------------------------------------------

struct Golden {
  std::string name;
  Bytes wire;
};

std::vector<Golden> slp_goldens() {
  std::vector<Golden> goldens;
  slp::SrvRqst request;
  request.service_type = "service:clock";
  request.predicate = "(friendlyName=Clock*)";
  goldens.push_back({"SrvRqst", slp::encode(slp::Message(request))});

  slp::SrvRply reply;
  reply.header.xid = 42;
  reply.url_entries = {
      slp::UrlEntry{300, "service:clock:soap://10.0.0.2:4005/control"}};
  goldens.push_back({"SrvRply", slp::encode(slp::Message(reply))});

  slp::SrvReg reg;
  reg.service_type = "service:clock";
  reg.url_entry = slp::UrlEntry{300, "service:clock:soap://10.0.0.2:4005/c"};
  reg.attr_list = "(friendlyName=Clock),(room=lab)";
  goldens.push_back({"SrvReg", slp::encode(slp::Message(reg))});

  slp::DAAdvert advert;
  advert.url = "service:directory-agent://10.0.0.9";
  advert.boot_timestamp = 7;
  goldens.push_back({"DAAdvert", slp::encode(slp::Message(advert))});
  return goldens;
}

std::vector<Golden> upnp_goldens() {
  std::vector<Golden> goldens;
  upnp::SearchRequest search;
  search.st = "urn:schemas-upnp-org:device:clock:1";
  goldens.push_back({"MSearch", to_bytes(search.to_http().serialize())});

  upnp::SearchResponse response;
  response.st = "urn:schemas-upnp-org:device:clock:1";
  response.usn = "uuid:ClockDevice::upnp:clock";
  response.location = "http://10.0.0.2:4004/description.xml";
  goldens.push_back({"SearchResponse",
                     to_bytes(response.to_http().serialize())});

  upnp::Notify notify;
  notify.nt = "urn:schemas-upnp-org:device:clock:1";
  notify.usn = "uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1";
  notify.location = "http://10.0.0.2:4004/description.xml";
  goldens.push_back({"NotifyAlive", to_bytes(notify.to_http().serialize())});

  goldens.push_back(
      {"Description", to_bytes(upnp::make_clock_device().to_xml())});
  return goldens;
}

std::vector<Golden> jini_goldens() {
  std::vector<Golden> goldens;
  jini::MulticastRequest request;
  request.response_port = 41000;
  request.groups = {"", "lab"};
  request.heard = {"10.0.0.9"};
  goldens.push_back({"MulticastRequest", request.encode()});

  jini::MulticastAnnouncement announcement;
  announcement.registrar_host = "10.0.0.9";
  announcement.registrar_port = 4160;
  announcement.registrar_id = 0xA11CE;
  announcement.groups = {""};
  goldens.push_back({"MulticastAnnouncement", announcement.encode()});
  return goldens;
}

std::vector<Golden> mdns_goldens() {
  std::vector<Golden> goldens;
  mdns::DnsMessage query;
  query.id = 7;
  mdns::DnsQuestion question;
  question.name = "_clock._tcp.local";
  question.unicast_response = true;
  query.questions.push_back(question);
  goldens.push_back({"BrowseQuery", mdns::encode(query)});

  mdns::DnsMessage announce;
  announce.flags = mdns::kFlagResponse | mdns::kFlagAuthoritative;
  mdns::DnsRecord ptr;
  ptr.name = "_clock._tcp.local";
  ptr.type = mdns::kTypePtr;
  ptr.ttl = 120;
  ptr.target = "clock1._clock._tcp.local";
  announce.answers.push_back(ptr);
  mdns::DnsRecord srv;
  srv.name = "clock1._clock._tcp.local";
  srv.type = mdns::kTypeSrv;
  srv.port = 4006;
  srv.target = "service.local";
  srv.ttl = 120;
  announce.answers.push_back(srv);
  mdns::DnsRecord txt;
  txt.name = "clock1._clock._tcp.local";
  txt.type = mdns::kTypeTxt;
  txt.ttl = 120;
  txt.txt = {{"url", "soap://10.0.0.2:4006/mdns-clock"}};
  announce.answers.push_back(txt);
  mdns::DnsRecord a;
  a.name = "service.local";
  a.type = mdns::kTypeA;
  a.ttl = 120;
  a.address = net::IpAddress(10, 0, 0, 2);
  announce.answers.push_back(a);
  goldens.push_back({"Announce", mdns::encode(announce)});
  return goldens;
}

// --- Corruption families (seeded, deterministic) -----------------------------

std::vector<Bytes> truncations(const Bytes& wire) {
  std::vector<Bytes> variants;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    variants.emplace_back(wire.begin(),
                          wire.begin() + static_cast<std::ptrdiff_t>(len));
  }
  return variants;
}

std::vector<Bytes> bit_flips(const Bytes& wire, std::uint64_t seed) {
  sim::Random rng(seed);
  std::vector<Bytes> variants;
  for (int trial = 0; trial < 200; ++trial) {
    Bytes variant = wire;
    int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int i = 0; i < flips && !variant.empty(); ++i) {
      auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(variant.size()) - 1));
      variant[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    variants.push_back(std::move(variant));
  }
  return variants;
}

/// Forces every byte position to the extremes and a seeded random value —
/// wherever a length field lives, this lies about it.
std::vector<Bytes> length_field_corruptions(const Bytes& wire,
                                            std::uint64_t seed) {
  sim::Random rng(seed);
  std::vector<Bytes> variants;
  for (std::size_t at = 0; at < wire.size(); ++at) {
    for (std::uint8_t forced :
         {std::uint8_t{0x00}, std::uint8_t{0xFF},
          static_cast<std::uint8_t>(rng.uniform_int(1, 254))}) {
      Bytes variant = wire;
      variant[at] = forced;
      variants.push_back(std::move(variant));
    }
  }
  return variants;
}

std::vector<Bytes> all_corruptions(const Bytes& wire, std::uint64_t seed) {
  std::vector<Bytes> variants = truncations(wire);
  for (auto& v : bit_flips(wire, seed)) variants.push_back(std::move(v));
  for (auto& v : length_field_corruptions(wire, seed + 1)) {
    variants.push_back(std::move(v));
  }
  return variants;
}

// --- Harness ----------------------------------------------------------------

core::MessageContext corrupt_ctx() {
  core::MessageContext ctx;
  ctx.source = net::Endpoint{net::IpAddress(10, 0, 0, 66), 41000};
  ctx.multicast = true;
  return ctx;
}

/// Feeds every corrupted variant of every golden to `decode` (exceptions
/// escaping the decoder are a bug) and to `parser`, asserting the parser
/// still frames its stream.
void sweep(const std::vector<Golden>& goldens,
           const std::function<void(BytesView)>& decode,
           core::SdpParser& parser, std::uint64_t seed) {
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  core::MessageContext ctx = corrupt_ctx();
  std::size_t variants_run = 0;
  for (const auto& golden : goldens) {
    for (const Bytes& variant : all_corruptions(golden.wire, seed)) {
      decode(variant);

      sink.reset();
      parser.parse(variant, ctx, sink);
      const core::EventStream& stream = sink.stream();
      ASSERT_FALSE(stream.empty())
          << golden.name << ": parser emitted nothing";
      ASSERT_EQ(stream.front().type, EventType::kControlStart) << golden.name;
      EventType last = stream.back().type;
      ASSERT_TRUE(last == EventType::kControlStop ||
                  last == EventType::kControlParserSwitch)
          << golden.name << ": stream not closed (last event "
          << core::event_name(last) << ")";
      variants_run += 1;
    }
  }
  // ~wire_size + 200 + 3*wire_size variants per golden: the sweep must have
  // actually swept.
  EXPECT_GT(variants_run, 500u);
}

TEST(CodecRobustness, SlpSurvivesCorruptedPackets) {
  core::SlpEventParser parser;
  sweep(slp_goldens(),
        [](BytesView wire) {
          std::string error;
          auto decoded = slp::decode(wire, &error);
          if (decoded.has_value()) slp::encode(*decoded);  // and re-encodes
        },
        parser, /*seed=*/101);
}

TEST(CodecRobustness, UpnpSurvivesCorruptedPackets) {
  core::SsdpEventParser parser;
  sweep(upnp_goldens(),
        [](BytesView wire) {
          auto message = upnp::parse_ssdp(wire);
          (void)message;
        },
        parser, /*seed=*/202);
}

TEST(CodecRobustness, UpnpDescriptionParserSurvivesCorruptedXml) {
  // The parser-switch target: corrupted description documents arrive as
  // continuation parses, so only the closing STOP is guaranteed.
  core::UpnpDescriptionParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  core::MessageContext ctx;
  ctx.continuation = true;
  Bytes xml = to_bytes(upnp::make_clock_device().to_xml());
  for (const Bytes& variant : all_corruptions(xml, 303)) {
    sink.reset();
    parser.parse(variant, ctx, sink);
    ASSERT_FALSE(sink.stream().empty());
    ASSERT_EQ(sink.stream().back().type, EventType::kControlStop);
  }
}

TEST(CodecRobustness, JiniSurvivesCorruptedPackets) {
  core::JiniEventParser parser;
  sweep(jini_goldens(),
        [](BytesView wire) {
          auto kind = jini::packet_kind(wire);
          auto request = jini::MulticastRequest::decode(wire);
          auto announcement = jini::MulticastAnnouncement::decode(wire);
          (void)kind;
          (void)request;
          (void)announcement;
        },
        parser, /*seed=*/404);
}

TEST(CodecRobustness, MdnsSurvivesCorruptedPackets) {
  core::MdnsEventParser parser;
  sweep(mdns_goldens(),
        [](BytesView wire) {
          std::string error;
          auto decoded = mdns::decode(wire, &error);
          if (decoded.has_value()) mdns::encode(*decoded);  // and re-encodes
        },
        parser, /*seed=*/505);
}

}  // namespace
}  // namespace indiss
