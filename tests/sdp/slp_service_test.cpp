// SLP service model tests: service types, service URLs, attribute lists and
// the LDAP predicate subset (property-style parameterized sweeps).
#include <gtest/gtest.h>

#include "slp/service.hpp"

namespace indiss::slp {
namespace {

TEST(ServiceType, AbstractAndConcreteParts) {
  ServiceType t("service:clock:soap");
  EXPECT_EQ(t.abstract_type(), "service:clock");
  EXPECT_EQ(t.concrete(), "soap");
  ServiceType plain("service:clock");
  EXPECT_EQ(plain.abstract_type(), "service:clock");
  EXPECT_TRUE(plain.concrete().empty());
}

TEST(ServiceType, MatchingIsCaseInsensitive) {
  ServiceType reg("Service:Clock:SOAP");
  EXPECT_TRUE(reg.matches_request(ServiceType("service:clock")));
}

struct TypeMatchCase {
  const char* registered;
  const char* requested;
  bool expected;
};

class TypeMatch : public ::testing::TestWithParam<TypeMatchCase> {};

TEST_P(TypeMatch, MatchesRequest) {
  const auto& c = GetParam();
  EXPECT_EQ(ServiceType(c.registered).matches_request(ServiceType(c.requested)),
            c.expected)
      << c.registered << " vs " << c.requested;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TypeMatch,
    ::testing::Values(
        TypeMatchCase{"service:clock:soap", "service:clock", true},
        TypeMatchCase{"service:clock:soap", "service:clock:soap", true},
        TypeMatchCase{"service:clock", "service:clock", true},
        TypeMatchCase{"service:clock:soap", "service:printer", false},
        TypeMatchCase{"service:clock:soap", "service:clock:http", false},
        TypeMatchCase{"service:clock", "", true},  // wildcard request
        TypeMatchCase{"service:clockwork", "service:clock", false}));

TEST(ServiceUrl, ParsesPaperExample) {
  auto url = ServiceUrl::parse(
      "service:clock:soap://128.93.8.112:4005/service/timer/control");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->type.abstract_type(), "service:clock");
  EXPECT_EQ(url->access, "soap://128.93.8.112:4005/service/timer/control");
}

TEST(ServiceUrl, ParsesPlainUrl) {
  auto url = ServiceUrl::parse("http://10.0.0.1:80/x");
  ASSERT_TRUE(url.has_value());
  EXPECT_EQ(url->type.full(), "http");
  EXPECT_EQ(url->access, "http://10.0.0.1:80/x");
}

TEST(ServiceUrl, RejectsGarbage) {
  EXPECT_FALSE(ServiceUrl::parse("").has_value());
  EXPECT_FALSE(ServiceUrl::parse("service:clock").has_value());
}

TEST(AttributeList, ParseAndSerializeRoundTrip) {
  auto attrs = AttributeList::parse("(a=1),(b=hello world),keyword");
  EXPECT_EQ(attrs.get("a").value(), "1");
  EXPECT_EQ(attrs.get("b").value(), "hello world");
  EXPECT_TRUE(attrs.has_keyword("keyword"));
  auto reparsed = AttributeList::parse(attrs.serialize());
  EXPECT_EQ(reparsed.get("a").value(), "1");
  EXPECT_TRUE(reparsed.has_keyword("keyword"));
}

TEST(AttributeList, SetOverwritesCaseInsensitively) {
  AttributeList attrs;
  attrs.set("Color", "red");
  attrs.set("color", "blue");
  EXPECT_EQ(attrs.get("COLOR").value(), "blue");
  EXPECT_EQ(attrs.pairs().size(), 1u);
}

TEST(AttributeList, EmptyInput) {
  auto attrs = AttributeList::parse("");
  EXPECT_TRUE(attrs.empty());
  EXPECT_EQ(attrs.serialize(), "");
}

struct PredicateCase {
  const char* filter;
  const char* attrs;
  bool expected;
};

class PredicateMatch : public ::testing::TestWithParam<PredicateCase> {};

TEST_P(PredicateMatch, Evaluates) {
  const auto& c = GetParam();
  auto predicate = Predicate::parse(c.filter);
  ASSERT_TRUE(predicate.has_value()) << c.filter;
  auto attrs = AttributeList::parse(c.attrs);
  EXPECT_EQ(predicate->matches(attrs), c.expected)
      << c.filter << " on " << c.attrs;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PredicateMatch,
    ::testing::Values(
        PredicateCase{"", "(a=1)", true},  // empty predicate matches all
        PredicateCase{"(a=1)", "(a=1)", true},
        PredicateCase{"(a=1)", "(a=2)", false},
        PredicateCase{"(a=1)", "(b=1)", false},
        PredicateCase{"(A=1)", "(a=1)", true},  // case-insensitive keys
        PredicateCase{"(a=Hello)", "(a=hello)", true},  // and values
        PredicateCase{"(a=*)", "(a=anything)", true},   // presence
        PredicateCase{"(a=*)", "(b=1)", false},
        PredicateCase{"(name=Clock*)", "(name=Clock Device)", true},
        PredicateCase{"(name=Clock*)", "(name=Radio)", false},
        PredicateCase{"(&(a=1)(b=2))", "(a=1),(b=2)", true},
        PredicateCase{"(&(a=1)(b=2))", "(a=1),(b=3)", false},
        PredicateCase{"(|(a=1)(b=2))", "(a=0),(b=2)", true},
        PredicateCase{"(|(a=1)(b=2))", "(a=0),(b=0)", false},
        PredicateCase{"(!(a=1))", "(a=2)", true},
        PredicateCase{"(!(a=1))", "(a=1)", false},
        PredicateCase{"(&(a=1)(|(b=2)(c=3)))", "(a=1),(c=3)", true},
        PredicateCase{"(keyword=*)", "(x=1),keyword", true}));

TEST(Predicate, RejectsMalformedFilters) {
  EXPECT_FALSE(Predicate::parse("(a=1").has_value());
  EXPECT_FALSE(Predicate::parse("(&)").has_value());
  EXPECT_FALSE(Predicate::parse("(!(a=1)(b=2))").has_value());  // NOT arity
  EXPECT_FALSE(Predicate::parse("(=1)").has_value());
  EXPECT_FALSE(Predicate::parse("trailing(a=1)").has_value());
  EXPECT_FALSE(Predicate::parse("(a=1)junk").has_value());
}

}  // namespace
}  // namespace indiss::slp
