// mDNS/DNS-SD protocol tests: wire-codec round trips for every record type,
// name-compression pointer edge cases (self-referencing, forward, looping
// and truncated pointers must fail cleanly), golden-packet parse/compose
// through the MdnsUnit parser, the RFC 6762 suppression rules on the
// simulated network, and the zero-steady-state-allocation pins for the
// parse -> events -> compose round trip (the PR-2 guarantee extended to the
// fourth SDP).
#include <gtest/gtest.h>

#include "core/units/mdns_unit.hpp"
#include "mdns/dns.hpp"
#include "mdns/dnssd.hpp"
#include "net/host.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

#include "tests/support/alloc_meter.hpp"

namespace indiss::mdns {
namespace {

using core::Event;
using core::EventStream;
using core::EventType;

// --- Codec round trips ------------------------------------------------------

DnsMessage announce_message() {
  DnsMessage message;
  message.flags = kFlagResponse | kFlagAuthoritative;

  DnsRecord ptr;
  ptr.name = "_clock._tcp.local";
  ptr.type = kTypePtr;
  ptr.ttl = 120;
  ptr.target = "clock1._clock._tcp.local";
  message.answers.push_back(ptr);

  DnsRecord srv;
  srv.name = "clock1._clock._tcp.local";
  srv.type = kTypeSrv;
  srv.cache_flush = true;
  srv.ttl = 120;
  srv.priority = 1;
  srv.weight = 7;
  srv.port = 4006;
  srv.target = "service.local";
  message.answers.push_back(srv);

  DnsRecord txt;
  txt.name = "clock1._clock._tcp.local";
  txt.type = kTypeTxt;
  txt.cache_flush = true;
  txt.ttl = 120;
  txt.txt = {{"url", "soap://10.0.0.2:4006/mdns-clock"},
             {"friendlyName", "Bonjour Clock"},
             {"ready", ""}};
  message.answers.push_back(txt);

  DnsRecord a;
  a.name = "service.local";
  a.type = kTypeA;
  a.cache_flush = true;
  a.ttl = 120;
  a.address = net::IpAddress(10, 0, 0, 2);
  message.answers.push_back(a);
  return message;
}

TEST(DnsCodec, RoundTripsEveryRecordType) {
  DnsMessage message = announce_message();
  message.id = 0x1234;
  DnsQuestion question;
  question.name = "_clock._tcp.local";
  question.qtype = kTypePtr;
  question.unicast_response = true;
  message.questions.push_back(question);
  DnsRecord unknown;
  unknown.name = "odd.local";
  unknown.type = 47;  // NSEC: carried verbatim
  unknown.ttl = 9;
  unknown.raw = {0xDE, 0xAD, 0xBE, 0xEF};
  message.additionals.push_back(unknown);

  Bytes wire = encode(message);
  std::string error;
  auto decoded = decode(wire, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_TRUE(decoded->is_response());
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "_clock._tcp.local");
  EXPECT_TRUE(decoded->questions[0].unicast_response);
  ASSERT_EQ(decoded->answers.size(), 4u);

  const DnsRecord& ptr = decoded->answers[0];
  EXPECT_EQ(ptr.type, kTypePtr);
  EXPECT_EQ(ptr.name, "_clock._tcp.local");
  EXPECT_EQ(ptr.target, "clock1._clock._tcp.local");
  EXPECT_EQ(ptr.ttl, 120u);
  EXPECT_FALSE(ptr.cache_flush);

  const DnsRecord& srv = decoded->answers[1];
  EXPECT_EQ(srv.type, kTypeSrv);
  EXPECT_TRUE(srv.cache_flush);
  EXPECT_EQ(srv.priority, 1);
  EXPECT_EQ(srv.weight, 7);
  EXPECT_EQ(srv.port, 4006);
  EXPECT_EQ(srv.target, "service.local");

  const DnsRecord& txt = decoded->answers[2];
  EXPECT_EQ(txt.type, kTypeTxt);
  ASSERT_EQ(txt.txt.size(), 3u);
  EXPECT_EQ(txt.txt[0].first, "url");
  EXPECT_EQ(txt.txt[0].second, "soap://10.0.0.2:4006/mdns-clock");
  EXPECT_EQ(txt.txt[2].first, "ready");
  EXPECT_EQ(txt.txt[2].second, "");

  const DnsRecord& a = decoded->answers[3];
  EXPECT_EQ(a.type, kTypeA);
  EXPECT_EQ(a.address, net::IpAddress(10, 0, 0, 2));

  ASSERT_EQ(decoded->additionals.size(), 1u);
  EXPECT_EQ(decoded->additionals[0].type, 47);
  EXPECT_EQ(decoded->additionals[0].raw, (Bytes{0xDE, 0xAD, 0xBE, 0xEF}));
}

TEST(DnsCodec, CompressionShrinksTheWireAndRoundTrips) {
  DnsMessage message = announce_message();
  Bytes wire = encode(message);

  // The shared "_clock._tcp.local" / "service.local" suffixes must have
  // collapsed into pointers (0xC0 top bits).
  std::size_t pointers = 0;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    if ((wire[i] & 0xC0) == 0xC0) ++pointers;
  }
  EXPECT_GE(pointers, 3u) << "expected compression pointers on the wire";

  // An uncompressed lower bound: the sum of all name spellings.
  std::size_t spelled = 0;
  for (const auto& r : message.answers) spelled += r.name.size() + 2;
  EXPECT_LT(wire.size(), spelled + 120)
      << "compressed message should be far smaller than spelled-out names";

  auto decoded = decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers[1].name, "clock1._clock._tcp.local");
  EXPECT_EQ(decoded->answers[3].name, "service.local");
}

// --- Compression pointer edge cases ----------------------------------------

// A minimal header claiming one question, followed by `name` bytes.
Bytes wire_with_question_name(const Bytes& name) {
  Bytes wire = {0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0};
  wire.insert(wire.end(), name.begin(), name.end());
  wire.push_back(0);  // qtype
  wire.push_back(12);
  wire.push_back(0);  // qclass
  wire.push_back(1);
  return wire;
}

TEST(DnsCodec, SelfReferencingPointerFailsCleanly) {
  // Name at offset 12 is a pointer to offset 12: itself.
  std::string error;
  auto decoded = decode(wire_with_question_name({0xC0, 12}), &error);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_NE(error.find("backwards"), std::string::npos) << error;
}

TEST(DnsCodec, ForwardPointerFailsCleanly) {
  auto decoded = decode(wire_with_question_name({0xC0, 14}));
  EXPECT_FALSE(decoded.has_value());
}

TEST(DnsCodec, OutOfBoundsPointerFailsCleanly) {
  // 0x3FFF is far past the end of this message; also a forward reference.
  auto decoded = decode(wire_with_question_name({0xFF, 0xFF}));
  EXPECT_FALSE(decoded.has_value());
}

TEST(DnsCodec, PointerLoopFailsCleanly) {
  // Offset 12: label "a", then a pointer back to offset 12 — every hop
  // passes a naive "points backwards" check but the chain never terminates.
  std::string error;
  auto decoded =
      decode(wire_with_question_name({1, 'a', 0xC0, 12}), &error);
  EXPECT_FALSE(decoded.has_value());
  EXPECT_NE(error.find("backwards"), std::string::npos) << error;
}

TEST(DnsCodec, TruncatedPointerFailsCleanly) {
  Bytes wire = {0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xC0};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsCodec, ReservedLabelTypeFailsCleanly) {
  EXPECT_FALSE(decode(wire_with_question_name({0x40, 'x'})).has_value());
}

TEST(DnsCodec, LabelRunningPastEndFailsCleanly) {
  Bytes wire = {0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 63, 'a', 'b'};
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(DnsCodec, TruncatedHeaderAndSectionsFailCleanly) {
  EXPECT_FALSE(decode(Bytes{}).has_value());
  EXPECT_FALSE(decode(Bytes{0, 1, 2}).has_value());
  // Header claims 3 questions, provides none.
  Bytes lying = {0, 0, 0, 0, 0, 3, 0, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(lying).has_value());
}

TEST(DnsCodec, RdlengthMismatchFailsCleanly) {
  DnsMessage message;
  message.flags = kFlagResponse;
  DnsRecord a;
  a.name = "h.local";
  a.type = kTypeA;
  a.address = net::IpAddress(1, 2, 3, 4);
  message.answers.push_back(a);
  Bytes wire = encode(message);
  // Find the A record's RDLENGTH (last 6 bytes are rdlen + 4 rdata bytes)
  // and lie about it.
  wire[wire.size() - 5] = 7;
  EXPECT_FALSE(decode(wire).has_value());
}

// --- Golden-packet parse through the unit parser ----------------------------

core::MessageContext multicast_ctx() {
  core::MessageContext ctx;
  ctx.source = net::Endpoint{net::IpAddress(10, 0, 0, 2), 5353};
  ctx.destination = net::Endpoint{kMdnsGroup, kMdnsPort};
  ctx.multicast = true;
  return ctx;
}

TEST(MdnsEventParser, AnnouncementBecomesAliveAdvertisement) {
  Bytes wire = encode(announce_message());
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  parser.parse(wire, multicast_ctx(), sink);

  const EventStream& stream = sink.stream();
  ASSERT_TRUE(core::well_framed(stream));
  ASSERT_NE(core::find_event(stream, EventType::kServiceAlive), nullptr);
  auto* type = core::find_event(stream, EventType::kServiceTypeIs);
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->get("type"), "clock");
  EXPECT_EQ(type->get("native"), "_clock._tcp.local");
  auto* instance = core::find_event(stream, EventType::kMdnsInstance);
  ASSERT_NE(instance, nullptr);
  EXPECT_EQ(instance->get("instance"), "clock1");
  auto* srv = core::find_event(stream, EventType::kMdnsSrv);
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(srv->get("port"), "4006");
  EXPECT_EQ(srv->get("target"), "service.local");
  auto* url = core::find_event(stream, EventType::kResServUrl);
  ASSERT_NE(url, nullptr);
  EXPECT_EQ(url->get("url"), "soap://10.0.0.2:4006/mdns-clock");
  auto* attr = core::find_event(stream, EventType::kServiceAttr);
  ASSERT_NE(attr, nullptr);
  EXPECT_EQ(attr->get("key"), "friendlyName");
}

TEST(MdnsEventParser, GoodbyeBecomesByeBye) {
  DnsMessage message = announce_message();
  for (auto& record : message.answers) record.ttl = 0;
  Bytes wire = encode(message);
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  parser.parse(wire, multicast_ctx(), sink);
  EXPECT_NE(core::find_event(sink.stream(), EventType::kServiceByeBye),
            nullptr);
  EXPECT_EQ(core::find_event(sink.stream(), EventType::kServiceAlive),
            nullptr);
}

TEST(MdnsEventParser, BrowseQueryBecomesServiceRequest) {
  DnsMessage query;
  query.id = 77;
  DnsQuestion question;
  question.name = "_clock._tcp.local";
  query.questions.push_back(question);
  Bytes wire = encode(query);

  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  parser.parse(wire, multicast_ctx(), sink);
  const EventStream& stream = sink.stream();
  auto* request = core::find_event(stream, EventType::kServiceRequest);
  ASSERT_NE(request, nullptr);
  EXPECT_EQ(request->get("server"), "");
  auto* q = core::find_event(stream, EventType::kMdnsQuestion);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->get("name"), "_clock._tcp.local");
  EXPECT_EQ(q->get("id"), "77");
  auto* type = core::find_event(stream, EventType::kServiceTypeIs);
  ASSERT_NE(type, nullptr);
  EXPECT_EQ(type->get("type"), "clock");
}

TEST(MdnsEventParser, UnicastResponseBecomesServiceResponse) {
  Bytes wire = encode(announce_message());
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  core::MessageContext ctx;
  ctx.source = net::Endpoint{net::IpAddress(10, 0, 0, 2), 5353};
  ctx.multicast = false;
  parser.parse(wire, ctx, sink);
  EXPECT_NE(core::find_event(sink.stream(), EventType::kServiceResponse),
            nullptr);
  EXPECT_NE(core::find_event(sink.stream(), EventType::kResOk), nullptr);
}

TEST(MdnsEventParser, MalformedPacketYieldsErrorNotCrash) {
  Bytes wire = {0xFF, 0x00, 0x01};
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  parser.parse(wire, multicast_ctx(), sink);
  ASSERT_TRUE(core::well_framed(sink.stream()));
  EXPECT_NE(core::find_event(sink.stream(), EventType::kResErr), nullptr);
}

TEST(MdnsEventParser, SynthesizesUrlFromSrvWhenTxtHasNone) {
  DnsMessage message = announce_message();
  message.answers[2].txt = {{"friendlyName", "Bonjour Clock"}};
  Bytes wire = encode(message);
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  parser.parse(wire, multicast_ctx(), sink);
  auto* url = core::find_event(sink.stream(), EventType::kResServUrl);
  ASSERT_NE(url, nullptr);
  EXPECT_EQ(url->get("url"), "mdns://10.0.0.2:4006");
}

// --- Compose: translated reply stream -> DNS-SD answer bundle ---------------

EventStream reply_stream() {
  EventStream stream;
  stream.push_back(Event(EventType::kControlStart));
  stream.push_back(Event(EventType::kNetType, {{"sdp", "upnp"}}));
  stream.push_back(Event(EventType::kServiceResponse));
  stream.push_back(Event(EventType::kServiceTypeIs, {{"type", "clock"}}));
  stream.push_back(Event(EventType::kServiceAttr,
                         {{"key", "friendlyName"}, {"value", "Foreign"}}));
  stream.push_back(Event(EventType::kResServUrl,
                         {{"url", "soap://10.0.0.9:4004/control"}}));
  stream.push_back(Event(EventType::kControlStop));
  return stream;
}

TEST(MdnsCompose, BuildsPtrSrvTxtABundleWithBridgeMarker) {
  DnsMessage out;
  std::size_t groups = core::compose_dnssd_answers(
      reply_stream(), "_clock._tcp.local", 120, out);
  ASSERT_EQ(groups, 1u);
  ASSERT_EQ(out.answers.size(), 1u);
  EXPECT_EQ(out.answers[0].type, kTypePtr);
  EXPECT_EQ(out.answers[0].name, "_clock._tcp.local");
  EXPECT_TRUE(out.answers[0].target.ends_with("._clock._tcp.local"));

  // SRV + TXT + A + bridge marker in additionals.
  ASSERT_EQ(out.additionals.size(), 4u);
  const DnsRecord& srv = out.additionals[0];
  EXPECT_EQ(srv.type, kTypeSrv);
  EXPECT_EQ(srv.port, 4004);
  EXPECT_EQ(srv.target, "10.0.0.9");
  const DnsRecord& txt = out.additionals[1];
  ASSERT_GE(txt.txt.size(), 2u);
  EXPECT_EQ(txt.txt[0].first, "url");
  EXPECT_EQ(txt.txt[0].second, "soap://10.0.0.9:4004/control");
  const DnsRecord& a = out.additionals[2];
  EXPECT_EQ(a.type, kTypeA);
  EXPECT_EQ(a.address, net::IpAddress(10, 0, 0, 9));
  EXPECT_EQ(out.additionals[3].name, "_indiss-bridge._udp.local");

  // The composed bundle survives a wire round trip.
  auto decoded = decode(encode(out));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->answers[0].target, out.answers[0].target);
}

TEST(MdnsCompose, BridgeMarkerIsSurfacedAsServerStamp) {
  DnsMessage out;
  ASSERT_EQ(core::compose_dnssd_answers(reply_stream(), "_clock._tcp.local",
                                        120, out),
            1u);
  Bytes wire = encode(out);
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  parser.parse(wire, multicast_ctx(), sink);
  auto* head = core::find_event(sink.stream(), EventType::kServiceAlive);
  ASSERT_NE(head, nullptr);
  EXPECT_NE(head->get("server").find("INDISS-bridge"), std::string::npos);
}

// --- Native actors on the simulated network ---------------------------------

struct DnssdFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 3};
  net::Host& service_host =
      network.add_host("service", net::IpAddress(10, 0, 0, 2));
  net::Host& client_host =
      network.add_host("client", net::IpAddress(10, 0, 0, 1));

  static ServiceInstance clock_instance(const std::string& name) {
    ServiceInstance service;
    service.instance = name;
    service.service_type = "_clock._tcp";
    service.port = 4006;
    service.txt = {{"url", "soap://10.0.0.2:4006/mdns-clock"}};
    return service;
  }
};

TEST_F(DnssdFixture, BrowserResolvesPublishedInstance) {
  MdnsResponder responder(service_host);
  responder.publish(clock_instance("clock1"));
  scheduler.run_for(sim::millis(10));

  MdnsBrowser browser(client_host);
  std::vector<BrowseResult> results;
  browser.browse("_clock._tcp",
                 [&](const std::vector<BrowseResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].instance, "clock1");
  EXPECT_EQ(results[0].port, 4006);
  EXPECT_EQ(results[0].address, net::IpAddress(10, 0, 0, 2));
  EXPECT_EQ(results[0].url(), "soap://10.0.0.2:4006/mdns-clock");
  EXPECT_GE(responder.queries_seen(), 1u);
  EXPECT_GE(responder.responses_sent(), 1u);
}

TEST_F(DnssdFixture, KnownAnswerSuppressionKeepsResponderSilent) {
  MdnsResponder responder(service_host);
  responder.publish(clock_instance("clock1"));
  scheduler.run_for(sim::seconds(3));  // past the whole announce burst
  std::uint64_t announced = responder.responses_sent();

  MdnsConfig no_retry;
  no_retry.browse_retransmits = 0;
  MdnsBrowser quiet(client_host, no_retry);
  std::vector<BrowseResult> results;
  quiet.browse("_clock._tcp",
               [&](const std::vector<BrowseResult>& r) { results = r; },
               /*known_answers=*/{"clock1"});
  scheduler.run_for(sim::seconds(1));

  EXPECT_TRUE(results.empty());
  EXPECT_EQ(responder.responses_sent(), announced);
  EXPECT_GE(responder.known_answer_suppressed(), 1u);
}

TEST_F(DnssdFixture, DuplicateAnswerSuppressionCancelsThePacedTimer) {
  // Two responders advertise the same shared PTR record; a full mDNS
  // querier (source port 5353) makes both schedule paced multicast answers.
  // The slower one must cancel when it hears the faster one's answer.
  MdnsConfig fast;
  fast.seed = 11;
  MdnsConfig slow;
  slow.seed = 12;
  MdnsResponder first(service_host, fast);
  MdnsResponder second(client_host, slow);
  first.publish(clock_instance("shared"));
  second.publish(clock_instance("shared"));
  scheduler.run_for(sim::seconds(3));  // past both announce bursts
  std::uint64_t sent_before = first.responses_sent() + second.responses_sent();

  net::Host& querier_host =
      network.add_host("querier", net::IpAddress(10, 0, 0, 7));
  auto socket = querier_host.udp_socket(kMdnsPort);
  DnsMessage query;
  DnsQuestion question;
  question.name = "_clock._tcp.local";
  query.questions.push_back(question);
  socket->send_to(net::Endpoint{kMdnsGroup, kMdnsPort}, encode(query));
  scheduler.run_for(sim::seconds(1));

  std::uint64_t answers =
      first.responses_sent() + second.responses_sent() - sent_before;
  EXPECT_EQ(answers, 1u) << "exactly one multicast answer must go out";
  EXPECT_EQ(first.duplicates_cancelled() + second.duplicates_cancelled(), 1u);
}

TEST_F(DnssdFixture, GoodbyeWithdrawsTheInstance) {
  MdnsResponder responder(service_host);
  responder.publish(clock_instance("clock1"));
  scheduler.run_for(sim::millis(10));
  responder.goodbye();
  scheduler.run_for(sim::millis(10));

  MdnsBrowser browser(client_host);
  std::vector<BrowseResult> results;
  bool complete = false;
  browser.browse("_clock._tcp", [&](const std::vector<BrowseResult>& r) {
    results = r;
    complete = true;
  });
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(complete);
  EXPECT_TRUE(results.empty());
}

// --- RFC 6762 §8 probing ----------------------------------------------------

TEST(ProbeHelpers, RdataComparisonIsSignSymmetricAndZeroOnIdentity) {
  DnsRecord mine;
  mine.name = "clock1._clock._tcp.local";
  mine.type = kTypeTxt;
  mine.txt = {{"url", "soap://10.0.0.2:4006/a"}};
  DnsRecord theirs = mine;
  EXPECT_EQ(compare_rdata_sets({mine}, {theirs}), 0)
      << "identical rdata is never a conflict";

  theirs.txt = {{"url", "soap://10.0.0.9:4006/z"}};
  int forward = compare_rdata_sets({mine}, {theirs});
  int backward = compare_rdata_sets({theirs}, {mine});
  EXPECT_NE(forward, 0);
  EXPECT_EQ(forward > 0, backward < 0) << "exactly one side wins a tiebreak";

  // §8.2.1: the cache-flush bit is excluded from the comparison key.
  theirs = mine;
  theirs.cache_flush = !mine.cache_flush;
  EXPECT_EQ(compare_rdata_sets({mine}, {theirs}), 0);
}

TEST(ProbeHelpers, RenamedLabelIsBoundedAndHashStable) {
  std::string first = renamed_label("clock1", 1);
  EXPECT_EQ(first, renamed_label("clock1", 1)) << "renames are reproducible";
  EXPECT_EQ(first.size(), std::string("clock1").size() + 4)
      << "base plus '-' plus 3 hex digits";
  EXPECT_EQ(first.compare(0, 6, "clock1"), 0);
  EXPECT_NE(first, renamed_label("clock1", 2));
  for (int attempt = 1; attempt < 50; ++attempt) {
    EXPECT_LE(renamed_label("clock1", attempt).size(),
              std::string("clock1").size() + 4)
        << "the suffix must stay bounded however many conflicts pile up";
  }
}

/// Harness for driving a ProbeEngine directly: collects every sent message
/// and lets tests feed hand-crafted inbound traffic.
struct ProbeFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 7};
  net::Host& host = network.add_host("gw", net::IpAddress(10, 0, 0, 3));

  std::vector<DnsMessage> sent;
  std::vector<std::string> established;
  std::vector<std::pair<std::string, std::string>> renamed;

  ProbeEngine::Callbacks callbacks() {
    ProbeEngine::Callbacks cb;
    cb.send = [this](const DnsMessage& m) { sent.push_back(m); };
    cb.on_established = [this](const std::string& n) {
      established.push_back(n);
    };
    cb.on_renamed = [this](const std::string& o, const std::string& n) {
      renamed.emplace_back(o, n);
    };
    return cb;
  }

  static std::vector<DnsRecord> claim_records(const std::string& name,
                                              const std::string& url) {
    DnsRecord txt;
    txt.name = name;
    txt.type = kTypeTxt;
    txt.ttl = 120;
    txt.txt = {{"url", url}};
    return {txt};
  }
};

TEST_F(ProbeFixture, ThreeUnansweredProbesWinTheName) {
  ProbeEngine engine(host, {}, callbacks());
  const std::string name = "clock1._clock._tcp.local";
  engine.claim(name, claim_records(name, "soap://10.0.0.2:4006/a"));
  EXPECT_TRUE(engine.busy());
  EXPECT_FALSE(engine.established(name));

  scheduler.run_for(sim::millis(1100));
  ASSERT_EQ(sent.size(), 3u) << "three probes, 250 ms apart";
  for (const DnsMessage& probe : sent) {
    EXPECT_FALSE(probe.is_response());
    ASSERT_EQ(probe.questions.size(), 1u);
    EXPECT_EQ(probe.questions[0].name, name);
    EXPECT_EQ(probe.questions[0].qtype, kTypeAny);
    ASSERT_EQ(probe.authorities.size(), 1u)
        << "§8.1: proposed records ride in the authority section";
    EXPECT_EQ(probe.authorities[0].name, name);
  }
  EXPECT_TRUE(engine.established(name));
  EXPECT_FALSE(engine.busy());
  ASSERT_EQ(established.size(), 1u);
  EXPECT_EQ(established[0], name);
  EXPECT_EQ(engine.stats().probes_sent, 3u);
  EXPECT_EQ(engine.stats().names_established, 1u);
  EXPECT_EQ(engine.stats().conflicts, 0u);
}

TEST_F(ProbeFixture, SimultaneousProbeTiebreakLoserDefersWinnerProceeds) {
  ProbeEngine engine(host, {}, callbacks());
  const std::string name = "clock1._clock._tcp.local";
  engine.claim(name, claim_records(name, "soap://10.0.0.2:4006/a"));
  scheduler.run_for(sim::millis(10));  // first probe out

  // A simultaneous probe with lexicographically greater rdata: we lose.
  DnsMessage their_probe;
  DnsQuestion question;
  question.name = name;
  question.qtype = kTypeAny;
  their_probe.questions.push_back(question);
  their_probe.authorities =
      claim_records(name, "soap://10.0.0.9:4006/z");  // "z" > "a"
  engine.handle_query(their_probe);
  EXPECT_EQ(engine.stats().tiebreaks_lost, 1u);
  EXPECT_FALSE(engine.established(name));

  // The deferred claim restarts after tiebreak_defer (1 s) and, unopposed
  // this time, wins: 3 original-claim probes would have finished by 750 ms,
  // the deferred rerun by ~1.75 s.
  scheduler.run_for(sim::seconds(3));
  EXPECT_TRUE(engine.established(name));
  EXPECT_EQ(engine.stats().renames, 0u)
      << "a lost tiebreak defers, it never renames";

  // And the mirror image: a probe with lesser rdata loses to us.
  ProbeEngine winner(host, {}, callbacks());
  const std::string other = "clock2._clock._tcp.local";
  winner.claim(other, claim_records(other, "soap://10.0.0.9:4006/z"));
  scheduler.run_for(sim::millis(10));
  DnsMessage lesser;
  question.name = other;
  lesser.questions.push_back(question);
  lesser.authorities = claim_records(other, "soap://10.0.0.2:4006/a");
  winner.handle_query(lesser);
  EXPECT_EQ(winner.stats().tiebreaks_won, 1u);
  EXPECT_EQ(winner.stats().tiebreaks_lost, 0u);
}

TEST_F(ProbeFixture, ConflictingResponseRenamesWithTheBoundedSuffix) {
  ProbeEngine engine(host, {}, callbacks());
  const std::string name = "clock1._clock._tcp.local";
  engine.claim(name, claim_records(name, "soap://10.0.0.2:4006/a"));
  scheduler.run_for(sim::millis(10));

  DnsMessage defense;
  defense.flags = kFlagResponse | kFlagAuthoritative;
  defense.answers = claim_records(name, "soap://10.0.0.9:4006/z");
  engine.handle_response(defense);

  ASSERT_EQ(renamed.size(), 1u);
  EXPECT_EQ(renamed[0].first, name);
  std::string expected =
      renamed_label("clock1", 1) + "._clock._tcp.local";
  EXPECT_EQ(renamed[0].second, expected);
  EXPECT_EQ(engine.stats().conflicts, 1u);
  EXPECT_EQ(engine.stats().renames, 1u);

  // The renamed claim re-probes and, unopposed, establishes — and its
  // records were rewritten to the new name.
  scheduler.run_for(sim::seconds(2));
  EXPECT_TRUE(engine.established(expected));
  const auto* records = engine.claim_records(expected);
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].name, expected);
}

TEST_F(ProbeFixture, IdenticalRdataFromAPeerIsNeverAConflict) {
  // The two-gateway coexistence property at engine level: a response (or
  // probe) carrying byte-identical records must not rename or defer us.
  ProbeEngine engine(host, {}, callbacks());
  const std::string name = "clock1._clock._tcp.local";
  const std::string url = "soap://10.0.0.2:4006/a";
  engine.claim(name, claim_records(name, url));
  scheduler.run_for(sim::millis(10));

  DnsMessage twin_announce;
  twin_announce.flags = kFlagResponse | kFlagAuthoritative;
  twin_announce.answers = claim_records(name, url);
  engine.handle_response(twin_announce);

  DnsMessage twin_probe;
  DnsQuestion question;
  question.name = name;
  question.qtype = kTypeAny;
  twin_probe.questions.push_back(question);
  twin_probe.authorities = claim_records(name, url);
  engine.handle_query(twin_probe);

  scheduler.run_for(sim::seconds(2));
  EXPECT_TRUE(engine.established(name));
  EXPECT_EQ(engine.stats().conflicts, 0u);
  EXPECT_EQ(engine.stats().renames, 0u);
  EXPECT_EQ(engine.stats().tiebreaks_lost, 0u);

  // Goodbyes (TTL 0) assert absence, not ownership: never a conflict.
  DnsMessage goodbye;
  goodbye.flags = kFlagResponse | kFlagAuthoritative;
  goodbye.answers = claim_records(name, "soap://10.0.0.9:4006/z");
  goodbye.answers[0].ttl = 0;
  engine.handle_response(goodbye);
  EXPECT_EQ(engine.stats().conflicts, 0u);
  EXPECT_TRUE(engine.established(name));
}

TEST_F(ProbeFixture, EstablishedNamesAreDefendedWithCacheFlushAnswers) {
  ProbeEngine engine(host, {}, callbacks());
  const std::string name = "clock1._clock._tcp.local";
  engine.claim(name, claim_records(name, "soap://10.0.0.2:4006/a"));
  scheduler.run_for(sim::seconds(2));
  ASSERT_TRUE(engine.established(name));
  sent.clear();

  DnsMessage hostile_probe;
  DnsQuestion question;
  question.name = name;
  question.qtype = kTypeAny;
  hostile_probe.questions.push_back(question);
  hostile_probe.authorities = claim_records(name, "soap://10.0.0.9:4006/z");
  engine.handle_query(hostile_probe);

  ASSERT_EQ(sent.size(), 1u) << "the defending answer goes out immediately";
  EXPECT_TRUE(sent[0].is_response());
  ASSERT_EQ(sent[0].answers.size(), 1u);
  EXPECT_EQ(sent[0].answers[0].name, name);
  EXPECT_TRUE(sent[0].answers[0].cache_flush)
      << "§10.2: defended records carry the cache-flush bit";
  EXPECT_EQ(engine.stats().defenses_sent, 1u);
  EXPECT_TRUE(engine.established(name)) << "defending never renames us";
}

TEST_F(ProbeFixture, ConflictStormEngagesExponentialBackoff) {
  // A hostile responder defends every name we try: every probe draws a
  // conflicting response. ≥15 conflicts inside 10 s must engage backoff —
  // the rename count stays bounded instead of flooding the wire.
  const std::string name = "clock1._clock._tcp.local";

  // Auto-responder: answer each probe (observed via the send callback) with
  // a conflicting response one millisecond later.
  ProbeEngine* engine_ptr = nullptr;
  int answered = 0;
  ProbeEngine::Callbacks cb = callbacks();
  cb.send = [&](const DnsMessage& m) {
    sent.push_back(m);
    if (m.is_response() || m.questions.empty()) return;
    DnsMessage conflict;
    conflict.flags = kFlagResponse | kFlagAuthoritative;
    conflict.answers =
        claim_records(m.questions[0].name, "soap://10.0.0.9:4006/z");
    ++answered;
    host.schedule(transport::millis(1),
                  [&, conflict]() { engine_ptr->handle_response(conflict); });
  };
  ProbeEngine hostile_target(host, {}, std::move(cb));
  engine_ptr = &hostile_target;
  hostile_target.claim(name, claim_records(name, "soap://10.0.0.2:4006/a"));

  scheduler.run_for(sim::seconds(60));
  const ProbeStats& stats = hostile_target.stats();
  EXPECT_GE(stats.conflicts, 15u);
  EXPECT_GE(stats.backoffs_engaged, 1u)
      << "the §8.1 rate limit must have engaged";
  EXPECT_EQ(stats.names_established, 0u);
  EXPECT_LT(stats.renames, 40u)
      << "backoff must bound the rename rate (one per 5..60 s once engaged)";
  EXPECT_GT(answered, 0);
}

// Responder-level coexistence: two probing responders claim the same
// instance name with different rdata. The tiebreak sorts out who keeps
// "clock1"; the loser renames once and both end up answerable under
// distinct names.
TEST_F(DnssdFixture, TwoProbingRespondersConvergeOnDistinctNames) {
  MdnsConfig probing;
  probing.probe = true;
  MdnsResponder first(service_host, probing);
  MdnsResponder second(client_host, probing);
  first.publish(clock_instance("clock1"));
  ServiceInstance other = clock_instance("clock1");
  other.txt = {{"url", "soap://10.0.0.1:4006/mdns-clock"}};  // different rdata
  second.publish(std::move(other));

  scheduler.run_for(sim::seconds(8));
  const ProbeStats& a = first.probe_stats();
  const ProbeStats& b = second.probe_stats();
  EXPECT_EQ(a.names_established + b.names_established, 2u)
      << "both must win some name";
  EXPECT_EQ(a.renames + b.renames, 1u) << "exactly one side renames once";
  EXPECT_EQ(a.tiebreaks_lost + b.tiebreaks_lost, 1u);

  net::Host& browser_host =
      network.add_host("browser", net::IpAddress(10, 0, 0, 9));
  MdnsBrowser browser(browser_host);
  std::vector<BrowseResult> results;
  browser.browse("_clock._tcp",
                 [&](const std::vector<BrowseResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].instance, results[1].instance);
  bool one_is_base =
      results[0].instance == "clock1" || results[1].instance == "clock1";
  EXPECT_TRUE(one_is_base) << "the tiebreak winner keeps the original name";
}

// --- Allocation pins --------------------------------------------------------

TEST(MdnsAllocs, CodecDecodeEncodeRoundTripIsZeroAllocSteadyState) {
  Bytes wire = encode(announce_message());
  DnsMessage scratch;
  DnsEncoder encoder;
  // Warm-up: grow every buffer to its high-water mark.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(decode_into(wire, scratch));
    encoder.encode(scratch);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    ASSERT_TRUE(decode_into(wire, scratch));
    BytesView out = encoder.encode(scratch);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm decode_into/encode must not allocate";
}

TEST(MdnsAllocs, ParseEventComposeRoundTripIsZeroAllocSteadyState) {
  // The full translation leg for the fourth SDP: golden announcement off
  // the wire -> event stream (pooled sink, recycled events) -> DNS-SD
  // answer bundle (slot-reused message) -> wire (warm encoder). Steady
  // state must be allocation-free, mirroring the PR-2 pipeline guarantees.
  Bytes wire = encode(announce_message());
  core::MdnsEventParser parser;
  core::StreamPool pool;
  core::CollectingSink sink(pool);
  core::MessageContext ctx = multicast_ctx();
  DnsMessage composed;
  DnsEncoder encoder;

  for (int i = 0; i < 16; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    core::compose_dnssd_answers(sink.stream(), "_clock._tcp.local", 120,
                                composed);
    encoder.encode(composed);
  }
  std::uint64_t before = indiss::testing::g_heap_allocs;
  for (int i = 0; i < 256; ++i) {
    sink.reset();
    parser.parse(wire, ctx, sink);
    std::size_t groups = core::compose_dnssd_answers(
        sink.stream(), "_clock._tcp.local", 120, composed);
    ASSERT_EQ(groups, 1u);
    BytesView out = encoder.encode(composed);
    ASSERT_FALSE(out.empty());
  }
  EXPECT_EQ(indiss::testing::g_heap_allocs - before, 0u)
      << "warm parse -> events -> compose must not allocate";
}

}  // namespace
}  // namespace indiss::mdns
