// SLPv2 wire-format tests: encode/decode round trips for every message kind
// (parameterized) plus malformed-input rejection.
#include <gtest/gtest.h>

#include "slp/wire.hpp"

namespace indiss::slp {
namespace {

Message sample_message(FunctionId id) {
  switch (id) {
    case FunctionId::kSrvRqst: {
      SrvRqst m;
      m.header.xid = 7;
      m.previous_responders = "10.0.0.1,10.0.0.2";
      m.service_type = "service:clock";
      m.scope_list = "DEFAULT";
      m.predicate = "(friendlyName=Clock*)";
      return m;
    }
    case FunctionId::kSrvRply: {
      SrvRply m;
      m.header.xid = 7;
      m.url_entries = {UrlEntry{300, "service:clock:soap://10.0.0.2:4005/c"},
                       UrlEntry{60, "service:clock:http://10.0.0.3/c"}};
      return m;
    }
    case FunctionId::kSrvReg: {
      SrvReg m;
      m.header.xid = 9;
      m.header.flags = kFlagFresh;
      m.url_entry = UrlEntry{120, "service:printer:lpr://10.0.0.4"};
      m.service_type = "service:printer";
      m.attr_list = "(color=true),(ppm=12)";
      return m;
    }
    case FunctionId::kSrvDeReg: {
      SrvDeReg m;
      m.url_entry = UrlEntry{0, "service:printer:lpr://10.0.0.4"};
      return m;
    }
    case FunctionId::kSrvAck: {
      SrvAck m;
      m.header.xid = 9;
      m.error = ErrorCode::kInvalidRegistration;
      return m;
    }
    case FunctionId::kAttrRqst: {
      AttrRqst m;
      m.url = "service:clock:soap://10.0.0.2:4005/c";
      m.tag_list = "friendlyName,model";
      return m;
    }
    case FunctionId::kAttrRply: {
      AttrRply m;
      m.attr_list = "(friendlyName=Clock Device)";
      return m;
    }
    case FunctionId::kDAAdvert: {
      DAAdvert m;
      m.boot_timestamp = 12345;
      m.url = "service:directory-agent://10.0.0.9";
      m.scope_list = "DEFAULT,HOME";
      return m;
    }
    case FunctionId::kSrvTypeRqst: {
      SrvTypeRqst m;
      m.naming_authority = "*";
      return m;
    }
    case FunctionId::kSrvTypeRply: {
      SrvTypeRply m;
      m.type_list = "service:clock,service:printer";
      return m;
    }
  }
  throw std::logic_error("unhandled function id");
}

class WireRoundTrip : public ::testing::TestWithParam<FunctionId> {};

TEST_P(WireRoundTrip, EncodeDecodePreservesMessage) {
  Message original = sample_message(GetParam());
  Bytes wire = encode(original);
  std::string error;
  auto decoded = decode(wire, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(function_of(*decoded), GetParam());
  EXPECT_EQ(header_of(*decoded).xid, header_of(original).xid);
  // Re-encoding must be byte-identical (stable wire format).
  EXPECT_EQ(encode(*decoded), wire);
}

TEST_P(WireRoundTrip, LengthFieldMatchesBufferSize) {
  Bytes wire = encode(sample_message(GetParam()));
  std::uint32_t length = (static_cast<std::uint32_t>(wire[2]) << 16) |
                         (static_cast<std::uint32_t>(wire[3]) << 8) | wire[4];
  EXPECT_EQ(length, wire.size());
}

TEST_P(WireRoundTrip, EveryTruncationIsRejectedNotCrashing) {
  Bytes wire = encode(sample_message(GetParam()));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    BytesView prefix(wire.data(), cut);
    std::string error;
    auto decoded = decode(prefix, &error);
    EXPECT_FALSE(decoded.has_value()) << "cut at " << cut;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, WireRoundTrip,
    ::testing::Values(FunctionId::kSrvRqst, FunctionId::kSrvRply,
                      FunctionId::kSrvReg, FunctionId::kSrvDeReg,
                      FunctionId::kSrvAck, FunctionId::kAttrRqst,
                      FunctionId::kAttrRply, FunctionId::kDAAdvert,
                      FunctionId::kSrvTypeRqst, FunctionId::kSrvTypeRply));

TEST(WireDecode, RejectsWrongVersion) {
  Bytes wire = encode(sample_message(FunctionId::kSrvRqst));
  wire[0] = 1;  // SLPv1
  std::string error;
  EXPECT_FALSE(decode(wire, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(WireDecode, RejectsUnknownFunction) {
  Bytes wire = encode(sample_message(FunctionId::kSrvRqst));
  wire[1] = 99;
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(WireDecode, RejectsLengthMismatch) {
  Bytes wire = encode(sample_message(FunctionId::kSrvRqst));
  wire.push_back(0);  // trailing junk: length field no longer matches
  EXPECT_FALSE(decode(wire).has_value());
}

TEST(WireDecode, FlagsSurviveRoundTrip) {
  SrvRqst m;
  m.header.flags = kFlagRequestMcast | kFlagOverflow;
  auto decoded = decode(encode(Message(m)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(header_of(*decoded).flags, kFlagRequestMcast | kFlagOverflow);
}

TEST(WireDecode, LanguageTagPreserved) {
  SrvRqst m;
  m.header.language = "fr";
  auto decoded = decode(encode(Message(m)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(header_of(*decoded).language, "fr");
}

}  // namespace
}  // namespace indiss::slp
