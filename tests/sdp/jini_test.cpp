// Jini stack tests: discovery packets, the lookup service (registrar) with
// leases, client lookup and the provider join protocol.
#include <gtest/gtest.h>

#include "jini/client.hpp"
#include "jini/discovery.hpp"
#include "jini/lookup.hpp"
#include "net/host.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace indiss::jini {
namespace {

TEST(Packets, MulticastRequestRoundTrip) {
  MulticastRequest request;
  request.response_port = 41234;
  request.groups = {"", "home"};
  request.heard = {"10.0.0.9"};
  auto decoded = MulticastRequest::decode(request.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->response_port, 41234);
  EXPECT_EQ(decoded->groups, request.groups);
  EXPECT_EQ(decoded->heard, request.heard);
}

TEST(Packets, AnnouncementRoundTrip) {
  MulticastAnnouncement a;
  a.registrar_host = "10.0.0.9";
  a.registrar_port = 4160;
  a.registrar_id = 0xFEEDBEEF;
  a.groups = {""};
  auto decoded = MulticastAnnouncement::decode(a.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->registrar_id, 0xFEEDBEEFu);
}

TEST(Packets, KindDetectionAndRejection) {
  MulticastRequest request;
  EXPECT_EQ(packet_kind(request.encode()).value(), kPacketMulticastRequest);
  EXPECT_FALSE(packet_kind(Bytes{}).has_value());
  EXPECT_FALSE(packet_kind(Bytes{99}).has_value());
  EXPECT_FALSE(MulticastRequest::decode(Bytes{1, 2}).has_value());
}

TEST(Items, TemplateMatching) {
  ServiceItem item;
  item.id = ServiceId{1, 2};
  item.service_type = "clock";
  item.attributes = {{"room", "kitchen"}, {"vendor", "acme"}};

  ServiceTemplate anything;
  EXPECT_TRUE(anything.matches(item));
  ServiceTemplate by_type;
  by_type.service_type = "clock";
  EXPECT_TRUE(by_type.matches(item));
  by_type.service_type = "printer";
  EXPECT_FALSE(by_type.matches(item));
  ServiceTemplate by_attr;
  by_attr.attributes = {{"room", "kitchen"}};
  EXPECT_TRUE(by_attr.matches(item));
  by_attr.attributes = {{"room", "garage"}};
  EXPECT_FALSE(by_attr.matches(item));
  ServiceTemplate by_id;
  by_id.id = ServiceId{1, 2};
  EXPECT_TRUE(by_id.matches(item));
  by_id.id = ServiceId{9, 9};
  EXPECT_FALSE(by_id.matches(item));
}

struct JiniFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 1};
  net::Host& registrar_host = network.add_host("reggie", net::IpAddress(10, 0, 0, 9));
  net::Host& client_host = network.add_host("client", net::IpAddress(10, 0, 0, 1));
  net::Host& service_host = network.add_host("service", net::IpAddress(10, 0, 0, 2));

  ServiceItem clock_item() {
    ServiceItem item;
    item.id = ServiceId{0xAA, 0xBB};
    item.service_type = "clock";
    item.attributes = {{"url", "soap://10.0.0.2:4005/clock"},
                       {"friendlyName", "Jini Clock"}};
    return item;
  }
};

TEST_F(JiniFixture, ProviderJoinsAndClientFindsIt) {
  LookupService registrar(registrar_host);
  JiniServiceProvider provider(service_host, clock_item());
  provider.join();
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(provider.joined());
  EXPECT_EQ(registrar.item_count(), 1u);

  JiniClient client(client_host);
  std::vector<ServiceItem> found;
  ServiceTemplate tmpl;
  tmpl.service_type = "clock";
  client.lookup(tmpl, [&](const std::vector<ServiceItem>& items) {
    found = items;
  });
  scheduler.run_for(sim::seconds(1));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].service_type, "clock");
  EXPECT_EQ(registrar.lookups_served(), 1u);
}

TEST_F(JiniFixture, LookupWithoutRegistrarReportsEmpty) {
  JiniClient client(client_host);
  bool called = false;
  std::vector<ServiceItem> found{clock_item()};  // sentinel, must be cleared
  client.lookup(ServiceTemplate{}, [&](const std::vector<ServiceItem>& items) {
    called = true;
    found = items;
  });
  scheduler.run_for(sim::seconds(2));
  EXPECT_TRUE(called);
  EXPECT_TRUE(found.empty());
}

TEST_F(JiniFixture, PassiveDiscoveryViaAnnouncements) {
  JiniConfig config;
  RegistrarDiscovery discovery(client_host, config);
  discovery.enable_passive_listening();
  LookupConfig lk;
  lk.announcement_interval = sim::seconds(3);
  LookupService registrar(registrar_host, lk);
  scheduler.run_for(sim::seconds(4));
  EXPECT_EQ(discovery.known().size(), 1u);
}

TEST_F(JiniFixture, LeaseExpiryRemovesItemWithoutRenewal) {
  LookupConfig lk;
  lk.max_lease_seconds = 2;
  lk.lease_sweep = sim::seconds(1);
  LookupService registrar(registrar_host, lk);

  // Register directly (no provider, so no renewals).
  JiniConfig config;
  config.lease_seconds = 2;
  JiniServiceProvider provider(service_host, clock_item(), config);
  provider.join();
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(registrar.item_count(), 1u);
  provider.leave();
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(registrar.item_count(), 0u);
}

TEST_F(JiniFixture, RenewalKeepsLeaseAlive) {
  LookupConfig lk;
  lk.max_lease_seconds = 2;
  lk.lease_sweep = sim::seconds(1);
  LookupService registrar(registrar_host, lk);
  JiniConfig config;
  config.lease_seconds = 2;
  config.renew_fraction = 0.4;
  JiniServiceProvider provider(service_host, clock_item(), config);
  provider.join();
  scheduler.run_for(sim::seconds(10));
  EXPECT_EQ(registrar.item_count(), 1u) << "renewals must keep the item";
}

TEST_F(JiniFixture, HeardSuppressionSilencesKnownRegistrar) {
  LookupService registrar(registrar_host);
  RegistrarDiscovery discovery(client_host);
  int callbacks = 0;
  discovery.discover([&](const RegistrarInfo&) { ++callbacks; });
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(callbacks, 1) << "retries carry 'heard' so no duplicate answers";
}

}  // namespace
}  // namespace indiss::jini
