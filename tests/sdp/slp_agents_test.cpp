// SLP agent tests: UA/SA discovery on the simulated LAN, predicate
// filtering, multicast convergence, loss recovery, and the Directory Agent
// (repository) mode.
#include <gtest/gtest.h>

#include "net/host.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"
#include "slp/agents.hpp"

namespace indiss::slp {
namespace {

struct SlpFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 1};
  net::Host& client_host = network.add_host("client", net::IpAddress(10, 0, 0, 1));
  net::Host& service_host = network.add_host("service", net::IpAddress(10, 0, 0, 2));

  ServiceRegistration clock_registration() {
    ServiceRegistration reg;
    reg.url = "service:clock:soap://10.0.0.2:4005/service/timer/control";
    reg.attributes.set("friendlyName", "CyberGarage Clock Device");
    reg.attributes.set("model", "Clock");
    return reg;
  }
};

TEST_F(SlpFixture, ActiveDiscoveryFindsService) {
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  UserAgent ua(client_host);

  std::vector<SearchResult> results;
  bool complete = false;
  ua.find_services("service:clock", "", nullptr,
                   [&](const std::vector<SearchResult>& r) {
                     results = r;
                     complete = true;
                   });
  scheduler.run_for(sim::seconds(1));
  ASSERT_TRUE(complete);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].entry.url,
            "service:clock:soap://10.0.0.2:4005/service/timer/control");
  EXPECT_EQ(results[0].responder.address, service_host.address());
}

TEST_F(SlpFixture, FirstResultLatencyIsAbout0p7ms) {
  // The Fig 7 reference point: native SLP round trip = request prep (0.3)
  // + network + handling (0.02) + network + reply parse (0.3) ≈ 0.7 ms.
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  UserAgent ua(client_host);

  sim::SimTime first_at{};
  ua.find_services("service:clock", "",
                   [&](const SearchResult&) { first_at = scheduler.now(); },
                   nullptr);
  scheduler.run_for(sim::seconds(1));
  ASSERT_GT(first_at.count(), 0);
  double ms = sim::to_millis(first_at);
  EXPECT_GT(ms, 0.5);
  EXPECT_LT(ms, 0.9);
}

TEST_F(SlpFixture, PredicateFiltersAtTheServiceAgent) {
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  UserAgent ua(client_host);

  std::vector<SearchResult> hits, misses;
  ua.find_services("service:clock", "(friendlyName=CyberGarage*)", nullptr,
                   [&](const std::vector<SearchResult>& r) { hits = r; });
  ua.find_services("service:clock", "(friendlyName=Siemens*)", nullptr,
                   [&](const std::vector<SearchResult>& r) { misses = r; });
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(hits.size(), 1u);
  EXPECT_EQ(misses.size(), 0u);
}

TEST_F(SlpFixture, WrongTypeGetsSilence) {
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  UserAgent ua(client_host);
  std::vector<SearchResult> results;
  ua.find_services("service:printer", "", nullptr,
                   [&](const std::vector<SearchResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(sa.replies_sent(), 0u);  // multicast no-match -> silence
}

TEST_F(SlpFixture, MultipleServicesAllDiscoveredAndDeduplicated) {
  ServiceAgent sa1(service_host);
  sa1.register_service(clock_registration());
  net::Host& third = network.add_host("svc2", net::IpAddress(10, 0, 0, 3));
  ServiceAgent sa2(third);
  ServiceRegistration other;
  other.url = "service:clock:http://10.0.0.3:80/clock";
  sa2.register_service(other);

  UserAgent ua(client_host);
  std::vector<SearchResult> results;
  ua.find_services("service:clock", "", nullptr,
                   [&](const std::vector<SearchResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));
  // Retransmissions must not produce duplicates.
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(SlpFixture, RetransmissionRecoversFromPacketLoss) {
  network.profile().udp_loss_rate = 0.4;
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());

  SlpConfig config;
  config.retransmissions = 4;
  config.multicast_wait = sim::millis(800);  // room for all five attempts
  UserAgent ua(client_host, config);
  std::vector<SearchResult> results;
  ua.find_services("service:clock", "", nullptr,
                   [&](const std::vector<SearchResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(2));
  EXPECT_EQ(results.size(), 1u) << "5 tries at 40% loss should get through";
}

TEST_F(SlpFixture, PreviousResponderSuppression) {
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  UserAgent ua(client_host);
  ua.find_services("service:clock", "", nullptr, nullptr);
  scheduler.run_for(sim::seconds(1));
  // The UA retransmits (default 2 retries) with the SA in the PR list; the
  // SA sees every request but answers only the first.
  EXPECT_EQ(ua.requests_sent(), 3u);
  EXPECT_EQ(sa.replies_sent(), 1u);
}

TEST_F(SlpFixture, AttributeRequestReturnsAttributes) {
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  UserAgent ua(client_host);
  AttributeList attrs;
  ErrorCode error = ErrorCode::kParseError;
  ua.find_attributes(
      "service:clock:soap://10.0.0.2:4005/service/timer/control",
      [&](ErrorCode e, const AttributeList& a) {
        error = e;
        attrs = a;
      });
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(error, ErrorCode::kOk);
  EXPECT_EQ(attrs.get("friendlyName").value_or(""),
            "CyberGarage Clock Device");
}

TEST_F(SlpFixture, DeregisteredServiceStopsAnswering) {
  ServiceAgent sa(service_host);
  auto reg = clock_registration();
  sa.register_service(reg);
  EXPECT_TRUE(sa.deregister_service(reg.url));
  EXPECT_FALSE(sa.deregister_service(reg.url));  // second time: gone

  UserAgent ua(client_host);
  std::vector<SearchResult> results;
  ua.find_services("service:clock", "", nullptr,
                   [&](const std::vector<SearchResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(results.empty());
}

// --- Directory Agent (repository) mode -------------------------------------

struct DaFixture : SlpFixture {
  net::Host& da_host = network.add_host("da", net::IpAddress(10, 0, 0, 9));
  // Agents created after the DA's boot advert need a periodic one soon.
  SlpConfig fast_da_config() {
    SlpConfig config;
    config.da_advert_interval = sim::millis(200);
    return config;
  }
};

TEST_F(DaFixture, SaRegistersWithDaOnAdvert) {
  DirectoryAgent da(da_host, fast_da_config());
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(sa.directory_agent().has_value());
  EXPECT_EQ(da.registration_count(), 1u);
}

TEST_F(DaFixture, UaQueriesDaUnicast) {
  DirectoryAgent da(da_host, fast_da_config());
  ServiceAgent sa(service_host);
  sa.register_service(clock_registration());
  scheduler.run_for(sim::seconds(1));

  UserAgent ua(client_host);
  ua.set_directory_agent(da.endpoint());
  std::vector<SearchResult> results;
  ua.find_services("service:clock", "", nullptr,
                   [&](const std::vector<SearchResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].responder.address, da_host.address());
  EXPECT_EQ(da.registrations_received(), 1u);
}

TEST_F(DaFixture, UaPassiveDaDiscovery) {
  SlpConfig config;
  config.da_advert_interval = sim::seconds(5);
  DirectoryAgent da(da_host, config);
  UserAgent ua(client_host);
  ua.enable_da_listening();
  scheduler.run_for(sim::seconds(6));
  ASSERT_TRUE(ua.directory_agent().has_value());
  EXPECT_EQ(ua.directory_agent()->address, da_host.address());
}

TEST_F(DaFixture, RegistrationLifetimeExpires) {
  SlpConfig config = fast_da_config();
  config.da_expiry_sweep = sim::seconds(1);
  DirectoryAgent da(da_host, config);
  ServiceAgent sa(service_host);
  auto reg = clock_registration();
  reg.lifetime_seconds = 3;
  sa.register_service(reg);
  scheduler.run_for(sim::seconds(2));
  EXPECT_EQ(da.registration_count(), 1u);
  scheduler.run_for(sim::seconds(5));
  EXPECT_EQ(da.registration_count(), 0u);
}

TEST_F(DaFixture, ActiveDaDiscoveryViaServiceRequest) {
  DirectoryAgent da(da_host);
  ServiceAgent sa(service_host);  // hears the boot advert
  scheduler.run_for(sim::millis(100));
  // A SrvRqst for service:directory-agent is answered with a DAAdvert, not a
  // SrvRply, and the SA must not answer it.
  UserAgent ua(client_host);
  std::vector<SearchResult> results;
  ua.find_services("service:directory-agent", "", nullptr,
                   [&](const std::vector<SearchResult>& r) { results = r; });
  scheduler.run_for(sim::seconds(1));
  EXPECT_TRUE(results.empty());  // DAAdvert is not a SrvRply
}

}  // namespace
}  // namespace indiss::slp
