// Shard routing and virtual-shard gateway tests (docs/sharding.md):
// byte-identical wires always map to the same shard, the classifier sends
// advertisements to one shard and control traffic to all, and the
// ShardedGateway's merged statistics equal the per-shard sums.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/shard/router.hpp"
#include "core/shard/sharded_gateway.hpp"
#include "mdns/dns.hpp"
#include "net/host.hpp"
#include "net/network.hpp"
#include "net/udp.hpp"
#include "sim/scheduler.hpp"
#include "slp/agents.hpp"
#include "slp/wire.hpp"
#include "upnp/ssdp.hpp"

namespace indiss::core::shard {
namespace {

Bytes slp_registration(int device) {
  slp::SrvReg reg;
  reg.url_entry = {300, "service:clock:soap://10.0.1." +
                            std::to_string(device % 250) + ":4005/dev" +
                            std::to_string(device)};
  reg.service_type = "service:clock";
  reg.attr_list = "(friendlyName=Dev " + std::to_string(device) + ")";
  return slp::encode(slp::Message(reg));
}

Bytes slp_request() {
  slp::SrvRqst request;
  request.service_type = "service:clock";
  return slp::encode(slp::Message(request));
}

Bytes slp_deregistration(int device) {
  slp::SrvDeReg dereg;
  dereg.url_entry = {0, "service:clock:soap://10.0.1." +
                            std::to_string(device % 250) + ":4005/dev" +
                            std::to_string(device)};
  return slp::encode(slp::Message(dereg));
}

Bytes upnp_notify(upnp::Notify::Kind kind) {
  upnp::Notify notify;
  notify.kind = kind;
  notify.nt = "urn:schemas-upnp-org:device:clock:1";
  notify.usn = "uuid:Dev7::urn:schemas-upnp-org:device:clock:1";
  notify.location = "http://10.0.1.7:4004/description.xml";
  return to_bytes(notify.to_http().serialize());
}

Bytes upnp_msearch() {
  upnp::SearchRequest request;
  request.st = "ssdp:all";
  return to_bytes(request.to_http().serialize());
}

Bytes mdns_message(bool response, std::uint32_t ttl) {
  mdns::DnsMessage message;
  if (response) message.flags = mdns::kFlagResponse;
  if (response) {
    mdns::DnsRecord ptr;
    ptr.name = "_clock._tcp.local";
    ptr.type = mdns::kTypePtr;
    ptr.ttl = ttl;
    ptr.target = "dev7._clock._tcp.local";
    message.answers.push_back(ptr);
  } else {
    mdns::DnsQuestion question;
    question.name = "_clock._tcp.local";
    message.questions.push_back(question);
  }
  return mdns::encode(message);
}

net::Datagram make_datagram(Bytes payload, std::uint16_t source_port) {
  net::Datagram datagram;
  datagram.source = {net::IpAddress(10, 0, 1, 50), source_port};
  datagram.payload = std::move(payload);
  datagram.multicast = true;
  return datagram;
}

TEST(ShardRouting, ByteIdenticalWiresAlwaysMapToTheSameShard) {
  for (int device = 0; device < 32; ++device) {
    Bytes wire = slp_registration(device);
    Bytes copy = wire;  // distinct buffer, identical bytes
    for (std::size_t shards : {1u, 2u, 4u, 8u}) {
      std::size_t index = shard_for(wire, shards);
      EXPECT_LT(index, shards);
      EXPECT_EQ(shard_for(copy, shards), index);
      EXPECT_EQ(shard_for(wire, shards), index);  // repeat call, same answer
    }
  }
}

TEST(ShardRouting, DistinctWiresSpreadAcrossShards) {
  std::set<std::size_t> seen;
  for (int device = 0; device < 200; ++device) {
    seen.insert(shard_for(slp_registration(device), 4));
  }
  // fnv1a64 over distinct payloads must reach every shard; a constant or
  // near-constant mapping would serialize the whole storm onto one core.
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ShardRouting, ClassifierHashesAdvertisements) {
  EXPECT_EQ(classify(SdpId::kSlp,
                     make_datagram(slp_registration(1), 40001)),
            Route::kHashed);
  EXPECT_EQ(classify(SdpId::kUpnp,
                     make_datagram(upnp_notify(upnp::Notify::Kind::kAlive),
                                   40001)),
            Route::kHashed);
  EXPECT_EQ(classify(SdpId::kMdns,
                     make_datagram(mdns_message(true, 120), 40001)),
            Route::kHashed);
}

TEST(ShardRouting, ClassifierBroadcastsRequestsAndWithdrawals) {
  // Requests: every shard may hold the state that answers them.
  EXPECT_EQ(classify(SdpId::kSlp, make_datagram(slp_request(), 40001)),
            Route::kBroadcast);
  EXPECT_EQ(classify(SdpId::kUpnp, make_datagram(upnp_msearch(), 40001)),
            Route::kBroadcast);
  EXPECT_EQ(classify(SdpId::kMdns,
                     make_datagram(mdns_message(false, 0), 40001)),
            Route::kBroadcast);
  // Withdrawals: different bytes from the advertisement, so hashing could
  // strand the impersonated state on another shard.
  EXPECT_EQ(classify(SdpId::kSlp,
                     make_datagram(slp_deregistration(1), 40001)),
            Route::kBroadcast);
  EXPECT_EQ(classify(SdpId::kUpnp,
                     make_datagram(upnp_notify(upnp::Notify::Kind::kByeBye),
                                   40001)),
            Route::kBroadcast);
  EXPECT_EQ(classify(SdpId::kMdns,
                     make_datagram(mdns_message(true, 0), 40001)),
            Route::kBroadcast);
  // Jini announcement traffic carries the registrar every shard needs.
  EXPECT_EQ(classify(SdpId::kJini, make_datagram(Bytes{1, 2, 3}, 40001)),
            Route::kBroadcast);
  // Truncated/garbage SLP replicates too (cannot prove it is an advert).
  EXPECT_EQ(classify(SdpId::kSlp, make_datagram(Bytes{}, 40001)),
            Route::kBroadcast);
}

struct VirtualShardFixture : ::testing::Test {
  sim::Scheduler scheduler;
  net::Network network{scheduler, net::LinkProfile{}, 7};
  net::Host& gateway_host =
      network.add_host("gw", net::IpAddress(10, 0, 0, 3));
  net::Host& device_host =
      network.add_host("dev", net::IpAddress(10, 0, 1, 50));

  ShardedConfig make_config(std::size_t shards) {
    ShardedConfig config;
    config.shards = shards;
    config.indiss.enabled_sdps = {SdpId::kSlp, SdpId::kUpnp};
    return config;
  }

  void send_slp(const Bytes& wire) {
    auto socket = device_host.udp_socket(0);
    socket->send_to(net::Endpoint{slp::kSlpMulticastGroup, slp::kSlpPort},
                    wire);
    scheduler.run_for(sim::seconds(30));  // past translate + settle windows
  }
};

TEST_F(VirtualShardFixture, AdvertisementLandsOnExactlyOneShard) {
  ShardedGateway gateway(gateway_host, make_config(2));
  gateway.start();
  scheduler.run_for(sim::millis(10));

  Bytes wire = slp_registration(7);
  std::size_t expected = gateway.shard_for(wire);
  send_slp(wire);
  send_slp(wire);  // byte-identical repeat: same shard, cache hit

  std::uint64_t parsed_total = 0;
  for (std::size_t i = 0; i < gateway.shard_count(); ++i) {
    const Unit* unit = gateway.shard(i).unit(SdpId::kSlp);
    ASSERT_NE(unit, nullptr);
    if (i == expected) {
      EXPECT_EQ(unit->stats().messages_parsed, 1u) << "shard " << i;
      EXPECT_EQ(unit->stats().cache_short_circuits, 1u) << "shard " << i;
    } else {
      EXPECT_EQ(unit->stats().messages_parsed, 0u) << "shard " << i;
    }
    parsed_total += unit->stats().messages_parsed;
  }
  EXPECT_EQ(parsed_total, 1u);
  EXPECT_EQ(gateway.datagrams_dispatched(), 2u);
  EXPECT_EQ(gateway.datagrams_replicated(), 0u);
  EXPECT_EQ(gateway.ring_dropped(), 0u);
  EXPECT_EQ(gateway.front_monitor().datagrams_seen(), 2u);
  EXPECT_TRUE(gateway.front_monitor().has_detected(SdpId::kSlp));
}

TEST_F(VirtualShardFixture, RequestIsReplicatedToEveryShard) {
  ShardedGateway gateway(gateway_host, make_config(2));
  gateway.start();
  scheduler.run_for(sim::millis(10));

  send_slp(slp_request());

  for (std::size_t i = 0; i < gateway.shard_count(); ++i) {
    const Unit* unit = gateway.shard(i).unit(SdpId::kSlp);
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->stats().messages_parsed, 1u) << "shard " << i;
  }
  EXPECT_EQ(gateway.datagrams_dispatched(), 1u);
  EXPECT_EQ(gateway.datagrams_replicated(), 1u);
}

// The satellite fix for shard-safe statistics: counters stay plain per-shard
// members, and the gateway-level accessors merge them at read time. The
// merged view must equal the per-shard sums exactly.
TEST_F(VirtualShardFixture, MergedStatsEqualPerShardSums) {
  ShardedGateway gateway(gateway_host, make_config(2));
  gateway.start();
  scheduler.run_for(sim::millis(10));

  // Distinct registrations spread over the hash; repeats generate hits.
  for (int device = 0; device < 6; ++device) {
    send_slp(slp_registration(device));
  }
  for (int device = 0; device < 6; ++device) {
    send_slp(slp_registration(device));
  }

  Unit::Stats expected_unit;
  TranslationCache::SdpStats expected_cache;
  for (std::size_t i = 0; i < gateway.shard_count(); ++i) {
    expected_unit += gateway.shard(i).unit(SdpId::kSlp)->stats();
    expected_cache += gateway.shard(i).translation_cache()->stats(SdpId::kSlp);
  }
  Unit::Stats merged = gateway.unit_stats(SdpId::kSlp);
  EXPECT_EQ(merged.messages_parsed, expected_unit.messages_parsed);
  EXPECT_EQ(merged.cache_short_circuits, expected_unit.cache_short_circuits);
  EXPECT_EQ(merged.sessions_opened, expected_unit.sessions_opened);
  EXPECT_EQ(merged.streams_dispatched, expected_unit.streams_dispatched);

  TranslationCache::SdpStats cache = gateway.translation_stats(SdpId::kSlp);
  EXPECT_EQ(cache.hits, expected_cache.hits);
  EXPECT_EQ(cache.misses, expected_cache.misses);
  EXPECT_EQ(cache.frames_replayed, expected_cache.frames_replayed);

  // And the totals are what the traffic implies: 6 first-time translations,
  // 6 byte-identical repeats short-circuited, spread across both shards.
  EXPECT_EQ(merged.messages_parsed, 6u);
  EXPECT_EQ(merged.cache_short_circuits, 6u);
  EXPECT_EQ(cache.hits, 6u);
  EXPECT_GT(gateway.shard(0).unit(SdpId::kSlp)->stats().messages_parsed, 0u);
  EXPECT_GT(gateway.shard(1).unit(SdpId::kSlp)->stats().messages_parsed, 0u);
}

TEST_F(VirtualShardFixture, RingOverflowDropsAndCounts) {
  ShardedConfig config = make_config(1);
  config.ring_capacity = 8;
  config.scan_ports = false;
  config.auto_pump = false;  // hold items in the ring to force overflow
  ShardedGateway gateway(gateway_host, config);
  gateway.start();
  scheduler.run_for(sim::millis(10));

  for (int device = 0; device < 11; ++device) {
    gateway.dispatch(SdpId::kSlp,
                     make_datagram(slp_registration(device), 40000));
  }
  EXPECT_EQ(gateway.ring_dropped(), 3u);  // 8 queued, 3 rejected
  EXPECT_EQ(gateway.pump(), 8u);
  scheduler.run_for(sim::seconds(1));
  EXPECT_EQ(gateway.unit_stats(SdpId::kSlp).messages_parsed, 8u);
}

}  // namespace
}  // namespace indiss::core::shard
