// MPSC ingress ring tests (docs/sharding.md): bounded capacity with
// drop-and-count overflow, per-producer FIFO under a seeded multi-producer
// stress run, and a 0-allocs/op steady state pinned by the alloc meter.
#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "core/shard/ingress_ring.hpp"
#include "tests/support/alloc_meter.hpp"

namespace indiss::core::shard {
namespace {

TEST(IngressRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(IngressRing<int>(1).capacity(), 2u);
  EXPECT_EQ(IngressRing<int>(5).capacity(), 8u);
  EXPECT_EQ(IngressRing<int>(8).capacity(), 8u);
  EXPECT_EQ(IngressRing<int>(1000).capacity(), 1024u);
}

TEST(IngressRing, OverflowDropsAndCountsNeverBlocks) {
  IngressRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.offer(i));
  // Full: the next offers are rejected immediately and counted.
  EXPECT_FALSE(ring.offer(100));
  EXPECT_FALSE(ring.offer(101));
  EXPECT_EQ(ring.dropped(), 2u);
  EXPECT_EQ(ring.accepted(), 8u);

  // Draining frees capacity again; accepted items come out FIFO and the
  // dropped ones are really gone.
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.poll(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.poll(out));
  EXPECT_TRUE(ring.offer(200));
  ASSERT_TRUE(ring.poll(out));
  EXPECT_EQ(out, 200);
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(IngressRing, FifoAcrossWraparound) {
  IngressRing<int> ring(4);
  int out = -1;
  int next_in = 0;
  int next_out = 0;
  // Push/pop in a balanced pattern that wraps the (4-slot) ring many times;
  // the extra single offer/poll every third round shifts the slot phase so
  // wraparound happens at every alignment.
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.offer(next_in++));
    EXPECT_TRUE(ring.offer(next_in++));
    ASSERT_TRUE(ring.poll(out));
    EXPECT_EQ(out, next_out++);
    ASSERT_TRUE(ring.poll(out));
    EXPECT_EQ(out, next_out++);
    if (round % 3 == 0) {
      EXPECT_TRUE(ring.offer(next_in++));
      ASSERT_TRUE(ring.poll(out));
      EXPECT_EQ(out, next_out++);
    }
  }
  while (ring.poll(out)) EXPECT_EQ(out, next_out++);
  EXPECT_EQ(next_out, next_in);
  EXPECT_EQ(ring.dropped(), 0u);
}

// Seeded multi-producer stress: every *accepted* item must come out exactly
// once, in per-producer FIFO order, with drops accounted. Producers jitter
// with a seeded PRNG so the interleavings vary but the run is reproducible.
TEST(IngressRing, MultiProducerStressKeepsPerProducerFifo) {
  struct Item {
    std::uint32_t producer = 0;
    std::uint32_t sequence = 0;
  };
  constexpr std::uint32_t kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  IngressRing<Item> ring(256);

  std::vector<std::vector<std::uint32_t>> accepted(kProducers);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, &accepted, p]() {
      std::mt19937 rng(1234u + p);
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        if (ring.offer(Item{p, i})) accepted[p].push_back(i);
        // Occasional tiny pause varies the interleaving (and lets the
        // consumer catch up so drops stay partial, not total).
        if ((rng() & 0x3F) == 0) std::this_thread::yield();
      }
    });
  }

  std::vector<std::vector<std::uint32_t>> received(kProducers);
  std::thread consumer([&ring, &received]() {
    Item item;
    std::uint32_t idle = 0;
    // Drain until the ring stays empty for a while after producers finish;
    // the join below bounds the test, not this heuristic.
    while (idle < 10000) {
      if (ring.poll(item)) {
        received[item.producer].push_back(item.sequence);
        idle = 0;
      } else {
        ++idle;
        std::this_thread::yield();
      }
    }
  });

  for (auto& t : producers) t.join();
  consumer.join();
  // Producers are done: anything still queued drains synchronously.
  Item item;
  while (ring.poll(item)) received[item.producer].push_back(item.sequence);

  std::uint64_t total_accepted = 0;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    total_accepted += accepted[p].size();
    // Exactly the accepted items, in exactly the offered order.
    EXPECT_EQ(received[p], accepted[p]) << "producer " << p;
  }
  EXPECT_EQ(ring.accepted(), total_accepted);
  EXPECT_EQ(ring.dropped(),
            std::uint64_t{kProducers} * kPerProducer - total_accepted);
}

TEST(IngressRing, SteadyStateMovesItemsWithZeroAllocations) {
  struct Item {
    Bytes payload;
  };
  IngressRing<Item> ring(64);
  Item in;
  in.payload.assign(512, 0xAB);
  Item out;

  // Warm: the payload buffer cycles in -> cell -> out -> (swap) -> in, so
  // after the first lap every move reuses the same heap block.
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(ring.offer(std::move(in)));
    ASSERT_TRUE(ring.poll(out));
    std::swap(in, out);
  }

  std::uint64_t before = testing::g_heap_allocs;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_TRUE(ring.offer(std::move(in)));
    ASSERT_TRUE(ring.poll(out));
    std::swap(in, out);
  }
  EXPECT_EQ(testing::g_heap_allocs - before, 0u)
      << "offer/poll must move payloads through the ring without allocating";
}

}  // namespace
}  // namespace indiss::core::shard
