// Threaded live shard pool tests (docs/sharding.md): real shard threads,
// eventfd wakeups, and MPSC rings under a dispatcher that feeds crafted
// datagrams straight through dispatch() (scan_ports=false, so nothing binds
// the well-known ports). This binary is the primary ThreadSanitizer target
// for the sharded pipeline; it sends real multicast on loopback when units
// egress, hence RUN_SERIAL in tests/CMakeLists.txt.
//
// Timing notes: shard gateways run on real time, so the test waits on the
// rings' cross-thread progress counters (consumed == accepted) plus a real
// grace period covering the units' translate_delay (20us) and the
// translation cache's settle window (200ms) before expecting repeats to
// short-circuit. The waits are generous upper bounds, not sleeps the test
// depends on exactly; under TSan the polling just takes more laps.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/shard/router.hpp"
#include "core/units/mdns_unit.hpp"
#include "live/event_loop.hpp"
#include "live/sharded.hpp"
#include "transport/time.hpp"
#include "upnp/ssdp.hpp"

namespace indiss::live {
namespace {

using core::SdpId;

Bytes upnp_alive(int device) {
  upnp::Notify notify;
  notify.kind = upnp::Notify::Kind::kAlive;
  notify.nt = "urn:schemas-upnp-org:device:clock:1";
  notify.usn = "uuid:LiveDev" + std::to_string(device) +
               "::urn:schemas-upnp-org:device:clock:1";
  notify.location =
      "http://10.0.1." + std::to_string(device % 250) + ":4004/desc.xml";
  return to_bytes(notify.to_http().serialize());
}

Bytes upnp_msearch() {
  upnp::SearchRequest request;
  request.st = "ssdp:all";
  return to_bytes(request.to_http().serialize());
}

net::Datagram make_datagram(Bytes payload) {
  net::Datagram datagram;
  datagram.source = {net::IpAddress(10, 0, 1, 50), 40001};
  datagram.payload = std::move(payload);
  datagram.multicast = true;
  return datagram;
}

LiveShardConfig make_config(std::size_t shards) {
  LiveShardConfig config;
  config.shards = shards;
  config.scan_ports = false;  // traffic enters through dispatch() only
  config.live.name = "shardtest";
  config.live.seed = 91;
  config.indiss.enabled_sdps = {SdpId::kUpnp, SdpId::kMdns};
  return config;
}

// Pumps the dispatcher loop until every accepted ring entry has been picked
// up by its shard thread. Returns false on timeout (~5s of real time).
bool wait_drained(EventLoop& loop, LiveShardPool& pool) {
  for (int i = 0; i < 1000; ++i) {
    if (pool.ingress_consumed() == pool.ingress_accepted()) return true;
    loop.run_for(transport::millis(5));
  }
  return false;
}

TEST(LiveShardPool, HashedAdvertisementsSpreadAndRepeatsShortCircuit) {
  EventLoop loop;
  LiveShardPool pool(loop, make_config(2));
  pool.start();

  // 16 distinct alives: the router hash decides each one's shard, and the
  // test recomputes the expected placement with the same function.
  constexpr int kDevices = 16;
  std::vector<Bytes> wires;
  std::vector<std::uint64_t> expected_parsed(2, 0);
  for (int device = 0; device < kDevices; ++device) {
    wires.push_back(upnp_alive(device));
    BytesView view(wires.back().data(), wires.back().size());
    expected_parsed[core::shard::shard_for(view, 2)] += 1;
  }
  // Distinct payloads must actually use both threads; a degenerate mapping
  // would make this "multi-core" pipeline single-core.
  ASSERT_GT(expected_parsed[0], 0u);
  ASSERT_GT(expected_parsed[1], 0u);

  for (const Bytes& wire : wires) {
    pool.dispatch(SdpId::kUpnp, make_datagram(wire));
  }
  ASSERT_TRUE(wait_drained(loop, pool)) << "shard threads never drained";
  // Past translate_delay and the 200ms cache settle window, so the repeats
  // below are eligible for short-circuit replay.
  loop.run_for(transport::millis(450));

  for (const Bytes& wire : wires) {
    pool.dispatch(SdpId::kUpnp, make_datagram(wire));
  }
  ASSERT_TRUE(wait_drained(loop, pool)) << "repeat round never drained";
  loop.run_for(transport::millis(250));

  pool.stop();  // join(): per-shard stats are now safe to read

  EXPECT_EQ(pool.datagrams_dispatched(), 2u * kDevices);
  EXPECT_EQ(pool.datagrams_replicated(), 0u);
  EXPECT_EQ(pool.ingress_accepted(), 2u * kDevices);
  EXPECT_EQ(pool.ingress_consumed(), 2u * kDevices);
  EXPECT_EQ(pool.ring_dropped(), 0u);

  // Each shard parsed exactly the advertisements the hash routed to it, and
  // every byte-identical repeat short-circuited on the same shard.
  core::Unit::Stats sum;
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    const core::Unit* unit = pool.shard(i).unit(SdpId::kUpnp);
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->stats().messages_parsed, expected_parsed[i])
        << "shard " << i;
    EXPECT_EQ(unit->stats().cache_short_circuits, expected_parsed[i])
        << "shard " << i;
    sum += unit->stats();
  }

  // The merged accessors agree with the by-hand sum (the satellite contract
  // for shard-safe statistics).
  core::Unit::Stats merged = pool.unit_stats(SdpId::kUpnp);
  EXPECT_EQ(merged.messages_parsed, sum.messages_parsed);
  EXPECT_EQ(merged.cache_short_circuits, sum.cache_short_circuits);
  EXPECT_EQ(merged.messages_parsed, static_cast<std::uint64_t>(kDevices));
  EXPECT_EQ(merged.cache_short_circuits,
            static_cast<std::uint64_t>(kDevices));

  core::TranslationCache::SdpStats cache = pool.translation_stats(SdpId::kUpnp);
  EXPECT_EQ(cache.hits, static_cast<std::uint64_t>(kDevices));
  EXPECT_EQ(cache.misses, static_cast<std::uint64_t>(kDevices));

  // The alives were bridged: the mdns units sent impersonation
  // announcements (their own counter — not messages_composed, which tracks
  // the request/response compose path).
  std::uint64_t announcements = 0;
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    if (const auto* mdns =
            pool.shard(i).unit_as<core::MdnsUnit>(SdpId::kMdns)) {
      announcements += mdns->announcements_sent();
    }
  }
  EXPECT_GT(announcements, 0u);
}

TEST(LiveShardPool, BroadcastControlTrafficReachesEveryShard) {
  EventLoop loop;
  LiveShardPool pool(loop, make_config(2));
  pool.start();

  pool.dispatch(SdpId::kUpnp, make_datagram(upnp_msearch()));
  ASSERT_TRUE(wait_drained(loop, pool));
  loop.run_for(transport::millis(50));

  pool.stop();

  EXPECT_EQ(pool.datagrams_dispatched(), 1u);
  EXPECT_EQ(pool.datagrams_replicated(), 1u);
  EXPECT_EQ(pool.ingress_accepted(), 2u);  // one copy per shard
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    const core::Unit* unit = pool.shard(i).unit(SdpId::kUpnp);
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->stats().messages_parsed, 1u) << "shard " << i;
  }
}

// Floods tiny rings from the dispatcher while the shard threads consume
// concurrently, then stops mid-stream: offer/poll/drop counters must stay
// consistent and shutdown must be prompt. (This is the contended path TSan
// watches; whether any drops actually occur depends on scheduling, so the
// test asserts accounting, not a specific drop count.)
TEST(LiveShardPool, StopWithBackloggedRingsIsPromptAndAccountsEveryOffer) {
  LiveShardConfig config = make_config(2);
  config.ring_capacity = 8;
  EventLoop loop;
  LiveShardPool pool(loop, config);
  pool.start();

  constexpr int kFlood = 200;
  for (int device = 0; device < kFlood; ++device) {
    pool.dispatch(SdpId::kUpnp, make_datagram(upnp_alive(device)));
  }
  pool.stop();

  EXPECT_EQ(pool.datagrams_dispatched(), static_cast<std::uint64_t>(kFlood));
  // Every hashed offer either entered a ring or was dropped-and-counted.
  EXPECT_EQ(pool.ingress_accepted() + pool.ring_dropped(),
            static_cast<std::uint64_t>(kFlood));
  EXPECT_LE(pool.ingress_consumed(), pool.ingress_accepted());
  // Whatever the shards consumed before the stop, they processed: the
  // monitor path parses or ignores, it never loses a consumed item.
  core::Unit::Stats merged = pool.unit_stats(SdpId::kUpnp);
  EXPECT_LE(merged.messages_parsed, pool.ingress_consumed());

  // A stopped pool ignores late traffic instead of waking dead threads.
  pool.dispatch(SdpId::kUpnp, make_datagram(upnp_alive(0)));
  EXPECT_EQ(pool.datagrams_dispatched(), static_cast<std::uint64_t>(kFlood));
}

}  // namespace
}  // namespace indiss::live
