// indissd: the INDISS gateway as a deployable daemon.
//
// One live::LiveTransport + one core::Indiss on an epoll event loop: the
// unchanged unit pipeline (the same objects the simulated experiments run)
// bridging real SDP traffic on real multicast groups. `--loopback` confines
// everything to 127.0.0.1/lo — the configuration the CI smoke test uses to
// bridge a scripted SSDP alive into an mDNS announcement; on a LAN, pass the
// interface's name and address instead.
//
// Usage:
//   indissd --loopback [--name gw] [--duration 2s] [--sdps slp,upnp,mdns]
//           [--seed 7] [--shards N] [--rate-limit 200]
//   indissd --iface eth0 --addr 192.168.1.10 [--sdps upnp,mdns]
//
// `--shards N` (N >= 2) runs the translation pipeline sharded across N
// threads (docs/sharding.md): the main loop scans the well-known ports and
// hash-routes each datagram into per-shard ingress rings; each shard thread
// runs a full scan-less gateway. The exit summary keeps the same `unit
// sdp=...` key shape with counters merged across shards, plus one `shard
// index=...` line per shard.
//
// Without --duration the daemon runs until SIGINT/SIGTERM. On exit it prints
// a machine-greppable summary (one `key=value` line per subsystem) that the
// smoke script asserts against.
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "core/indiss.hpp"
#include "core/units/mdns_unit.hpp"
#include "live/event_loop.hpp"
#include "live/sharded.hpp"
#include "live/transport.hpp"

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

using indiss::core::SdpId;

std::optional<SdpId> sdp_from_name(std::string_view name) {
  for (SdpId sdp : {SdpId::kSlp, SdpId::kUpnp, SdpId::kJini, SdpId::kMdns}) {
    if (name == indiss::core::sdp_name(sdp)) return sdp;
  }
  return std::nullopt;
}

/// "2s" / "1500ms" / "inf" -> duration; nullopt on a malformed value.
std::optional<indiss::transport::Duration> parse_duration(
    std::string_view text) {
  if (text == "inf") return indiss::transport::Duration::max();
  std::size_t digits = 0;
  while (digits < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[digits])) != 0)) {
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  long long value = std::strtoll(std::string(text.substr(0, digits)).c_str(),
                                 nullptr, 10);
  std::string_view suffix = text.substr(digits);
  if (suffix == "ms") return indiss::transport::millis(value);
  if (suffix == "s" || suffix.empty()) {
    return indiss::transport::seconds(value);
  }
  return std::nullopt;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--loopback | --iface NAME --addr A.B.C.D)\n"
               "          [--name NAME] [--duration 2s|500ms|inf]\n"
               "          [--sdps slp,upnp,mdns,jini] [--seed N] [--shards N]\n"
               "          [--rate-limit N]   per-source datagrams/sec "
               "(0 = off, docs/chaos.md)\n"
               "          [--directory]      answer repeat queries from the "
               "service index (docs/directory.md)\n"
               "          [--probe]          RFC 6762 probe/tiebreak bridged "
               "mDNS names before announcing (docs/chaos.md)\n",
               argv0);
  return 2;
}

/// The --shards N (N >= 2) deployment: dispatcher loop + N shard threads
/// (live::LiveShardPool). Summary keys match the unsharded daemon where the
/// quantity is the same thing merged, plus per-shard and dispatch lines.
int run_sharded(const indiss::live::LiveConfig& live_config,
                const std::set<SdpId>& sdps,
                indiss::transport::Duration duration, std::size_t shards,
                double rate_limit, bool directory, bool probe) {
  using namespace indiss;

  live::EventLoop loop;
  live::LiveShardConfig pool_config;
  pool_config.shards = shards;
  pool_config.live = live_config;
  pool_config.indiss.enabled_sdps = sdps;
  pool_config.indiss.monitor.rate_limit_per_sec = rate_limit;
  pool_config.indiss.enable_directory = directory;
  pool_config.indiss.mdns.probe = probe;
  live::LiveShardPool pool(loop, pool_config);
  pool.start();

  std::fprintf(stderr, "indissd: %s up on %s (%s), %zu shards, bridging",
               live_config.name.c_str(),
               live_config.address.to_string().c_str(),
               live_config.interface.c_str(), shards);
  for (core::SdpId sdp : sdps) {
    std::fprintf(stderr, " %s", std::string(core::sdp_name(sdp)).c_str());
  }
  std::fprintf(stderr, "\n");

  pool.front_transport().schedule_periodic(transport::millis(50), [&loop]() {
    if (g_stop.load()) loop.stop();
  });

  if (duration == transport::Duration::max()) {
    loop.run();
  } else {
    loop.run_for(duration);
  }

  // Joining the shard threads is what makes their counters mergeable; the
  // shards stay constructed (inert) until pool destruction, so the summary
  // reads real numbers.
  pool.stop();

  std::printf("indissd name=%s up_ms=%.0f shards=%zu\n",
              live_config.name.c_str(), transport::to_millis(loop.now()),
              shards);
  const auto front_stats = pool.front_monitor().stats();
  std::printf("monitor datagrams_seen=%llu filtered=%llu rate_limited=%llu\n",
              static_cast<unsigned long long>(front_stats.seen),
              static_cast<unsigned long long>(front_stats.filtered),
              static_cast<unsigned long long>(front_stats.rate_limited));
  for (const auto& [sdp, when] : pool.front_monitor().detected()) {
    std::printf("detected sdp=%s at_ms=%.0f\n",
                std::string(core::sdp_name(sdp)).c_str(),
                transport::to_millis(when));
  }
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    std::printf("shard index=%zu ingested=%llu ring_dropped=%llu\n", i,
                static_cast<unsigned long long>(pool.shard_consumed(i)),
                static_cast<unsigned long long>(pool.shard_dropped(i)));
  }
  std::printf("dispatch routed=%llu replicated=%llu\n",
              static_cast<unsigned long long>(pool.datagrams_dispatched()),
              static_cast<unsigned long long>(pool.datagrams_replicated()));
  // Aggregate ingress accounting across the shard rings (docs/chaos.md):
  // how much hostile load the gateway shed and where.
  unsigned long long ring_consumed = 0;
  unsigned long long ring_dropped = 0;
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    ring_consumed += pool.shard_consumed(i);
    ring_dropped += pool.shard_dropped(i);
  }
  std::printf("ingress consumed=%llu ring_dropped=%llu rate_limited=%llu\n",
              ring_consumed, ring_dropped,
              static_cast<unsigned long long>(front_stats.rate_limited));
  for (core::SdpId sdp : sdps) {
    const auto s = pool.unit_stats(sdp);
    std::printf(
        "unit sdp=%s parsed=%llu composed=%llu sessions=%llu dispatched=%llu "
        "cache_hits=%llu\n",
        std::string(core::sdp_name(sdp)).c_str(),
        static_cast<unsigned long long>(s.messages_parsed),
        static_cast<unsigned long long>(s.messages_composed),
        static_cast<unsigned long long>(s.sessions_opened),
        static_cast<unsigned long long>(s.streams_dispatched),
        static_cast<unsigned long long>(s.cache_short_circuits));
  }
  if (directory) {
    std::size_t records = 0;
    for (std::size_t i = 0; i < pool.shard_count(); ++i) {
      if (const auto* dir = pool.shard(i).directory()) records += dir->size();
    }
    std::printf("directory records=%zu\n", records);
    for (core::SdpId sdp : sdps) {
      const auto d = pool.directory_stats(sdp);
      std::printf(
          "directory sdp=%s answered=%llu bridged=%llu stored=%llu "
          "withdrawals=%llu\n",
          std::string(core::sdp_name(sdp)).c_str(),
          static_cast<unsigned long long>(d.answered),
          static_cast<unsigned long long>(d.bridged),
          static_cast<unsigned long long>(d.records_stored),
          static_cast<unsigned long long>(d.withdrawals));
    }
  }
  if (sdps.contains(core::SdpId::kMdns)) {
    unsigned long long announcements = 0;
    std::size_t cached = 0;
    for (std::size_t i = 0; i < pool.shard_count(); ++i) {
      if (auto* mdns = pool.shard(i).unit_as<core::MdnsUnit>(
              core::SdpId::kMdns)) {
        announcements += mdns->announcements_sent();
        cached += mdns->foreign_services().size();
      }
    }
    std::printf("mdns announcements_sent=%llu cached_services=%zu\n",
                announcements, cached);
    if (probe) {
      const auto p = pool.probe_stats();
      std::printf(
          "mdns probes=%llu conflicts=%llu renames=%llu tiebreaks_lost=%llu "
          "defenses=%llu backoffs=%llu established=%llu\n",
          static_cast<unsigned long long>(p.probes_sent),
          static_cast<unsigned long long>(p.conflicts),
          static_cast<unsigned long long>(p.renames),
          static_cast<unsigned long long>(p.tiebreaks_lost),
          static_cast<unsigned long long>(p.defenses_sent),
          static_cast<unsigned long long>(p.backoffs_engaged),
          static_cast<unsigned long long>(p.names_established));
    }
  }
  std::uint64_t wire_bytes = pool.front_transport().stats().wire_bytes();
  std::uint64_t wire_packets = pool.front_transport().stats().wire_packets();
  for (std::size_t i = 0; i < pool.shard_count(); ++i) {
    const auto& ts = pool.shard(i).transport().stats();
    wire_bytes += ts.wire_bytes();
    wire_packets += ts.wire_packets();
  }
  std::printf("traffic wire_bytes=%llu wire_packets=%llu\n",
              static_cast<unsigned long long>(wire_bytes),
              static_cast<unsigned long long>(wire_packets));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace indiss;

  live::LiveConfig live_config;
  live_config.name = "indissd";
  bool loopback = false;
  bool have_iface = false;
  bool have_addr = false;
  transport::Duration duration = transport::Duration::max();
  std::size_t shards = 1;
  double rate_limit = 0.0;
  bool directory = false;
  bool probe = false;
  std::set<core::SdpId> sdps = {core::SdpId::kSlp, core::SdpId::kUpnp,
                                core::SdpId::kMdns};

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--loopback") {
      loopback = true;
    } else if (arg == "--name") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      live_config.name = v;
    } else if (arg == "--iface") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      live_config.interface = v;
      have_iface = true;
    } else if (arg == "--addr") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      auto parsed = net::IpAddress::parse(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "indissd: bad --addr '%s'\n", v);
        return 2;
      }
      live_config.address = *parsed;
      have_addr = true;
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      auto parsed = parse_duration(v);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "indissd: bad --duration '%s'\n", v);
        return 2;
      }
      duration = *parsed;
    } else if (arg == "--sdps") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sdps.clear();
      for (auto part : str::split(v, ',')) {
        auto sdp = sdp_from_name(str::trim(part));
        if (!sdp.has_value()) {
          std::fprintf(stderr, "indissd: unknown SDP '%.*s'\n",
                       static_cast<int>(part.size()), part.data());
          return 2;
        }
        sdps.insert(*sdp);
      }
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      live_config.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      shards = std::strtoul(v, nullptr, 10);
      if (shards == 0) {
        std::fprintf(stderr, "indissd: bad --shards '%s'\n", v);
        return 2;
      }
    } else if (arg == "--directory") {
      directory = true;
    } else if (arg == "--probe") {
      probe = true;
    } else if (arg == "--rate-limit") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      char* end = nullptr;
      rate_limit = std::strtod(v, &end);
      if (end == v || rate_limit < 0.0) {
        std::fprintf(stderr, "indissd: bad --rate-limit '%s'\n", v);
        return 2;
      }
    } else {
      return usage(argv[0]);
    }
  }

  if (!loopback && !(have_iface && have_addr)) return usage(argv[0]);
  if (loopback) {
    live_config.interface = "lo";
    live_config.address = net::IpAddress(127, 0, 0, 1);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  if (shards > 1) {
    return run_sharded(live_config, sdps, duration, shards, rate_limit,
                       directory, probe);
  }

  live::EventLoop loop;
  live::LiveTransport transport(loop, live_config);

  core::IndissConfig config;
  config.enabled_sdps = sdps;
  config.monitor.rate_limit_per_sec = rate_limit;
  config.enable_directory = directory;
  config.mdns.probe = probe;
  core::Indiss indiss(transport, config);
  indiss.start();
  std::fprintf(stderr, "indissd: %s up on %s (%s), bridging",
               live_config.name.c_str(),
               live_config.address.to_string().c_str(),
               live_config.interface.c_str());
  for (core::SdpId sdp : sdps) {
    std::fprintf(stderr, " %s", std::string(core::sdp_name(sdp)).c_str());
  }
  std::fprintf(stderr, "\n");

  // Signals only interrupt epoll_wait; a periodic check turns the flag into
  // a loop stop from inside the loop's own thread.
  transport.schedule_periodic(transport::millis(50), [&loop]() {
    if (g_stop.load()) loop.stop();
  });

  if (duration == transport::Duration::max()) {
    loop.run();
  } else {
    loop.run_for(duration);
  }
  // --- Exit summary (greppable; the smoke test's assertion surface).
  // Printed before stop(): stop() tears the unit registry down. -----------
  std::printf("indissd name=%s up_ms=%.0f\n", live_config.name.c_str(),
              transport::to_millis(loop.now()));
  const auto monitor_stats = indiss.monitor().stats();
  std::printf("monitor datagrams_seen=%llu filtered=%llu rate_limited=%llu\n",
              static_cast<unsigned long long>(monitor_stats.seen),
              static_cast<unsigned long long>(monitor_stats.filtered),
              static_cast<unsigned long long>(monitor_stats.rate_limited));
  for (const auto& [sdp, when] : indiss.monitor().detected()) {
    std::printf("detected sdp=%s at_ms=%.0f\n",
                std::string(core::sdp_name(sdp)).c_str(),
                transport::to_millis(when));
  }
  for (core::SdpId sdp : sdps) {
    core::Unit* unit = indiss.unit(sdp);
    if (unit == nullptr) continue;
    const auto& s = unit->stats();
    std::printf(
        "unit sdp=%s parsed=%llu composed=%llu sessions=%llu dispatched=%llu "
        "cache_hits=%llu\n",
        std::string(core::sdp_name(sdp)).c_str(),
        static_cast<unsigned long long>(s.messages_parsed),
        static_cast<unsigned long long>(s.messages_composed),
        static_cast<unsigned long long>(s.sessions_opened),
        static_cast<unsigned long long>(s.streams_dispatched),
        static_cast<unsigned long long>(s.cache_short_circuits));
  }
  if (const auto* dir = indiss.directory()) {
    std::printf("directory records=%zu\n", dir->size());
    for (core::SdpId sdp : sdps) {
      const auto d = indiss.monitor().directory_stats(sdp);
      std::printf(
          "directory sdp=%s answered=%llu bridged=%llu stored=%llu "
          "withdrawals=%llu\n",
          std::string(core::sdp_name(sdp)).c_str(),
          static_cast<unsigned long long>(d.answered),
          static_cast<unsigned long long>(d.bridged),
          static_cast<unsigned long long>(d.records_stored),
          static_cast<unsigned long long>(d.withdrawals));
    }
  }
  if (auto* mdns = indiss.unit_as<core::MdnsUnit>(core::SdpId::kMdns)) {
    std::printf("mdns announcements_sent=%llu cached_services=%zu\n",
                static_cast<unsigned long long>(mdns->announcements_sent()),
                mdns->foreign_services().size());
    if (probe) {
      const auto p = indiss.probe_stats();
      std::printf(
          "mdns probes=%llu conflicts=%llu renames=%llu tiebreaks_lost=%llu "
          "defenses=%llu backoffs=%llu established=%llu\n",
          static_cast<unsigned long long>(p.probes_sent),
          static_cast<unsigned long long>(p.conflicts),
          static_cast<unsigned long long>(p.renames),
          static_cast<unsigned long long>(p.tiebreaks_lost),
          static_cast<unsigned long long>(p.defenses_sent),
          static_cast<unsigned long long>(p.backoffs_engaged),
          static_cast<unsigned long long>(p.names_established));
    }
  }
  const auto& ts = transport.stats();
  std::printf("traffic wire_bytes=%llu wire_packets=%llu\n",
              static_cast<unsigned long long>(ts.wire_bytes()),
              static_cast<unsigned long long>(ts.wire_packets()));
  indiss.stop();
  return 0;
}
