// sdptool: scripted SDP traffic for exercising a live indissd from outside.
//
// Two subcommands, built on the same live transport the daemon uses:
//
//   sdptool ssdp-alive [--nt urn:...] [--usn uuid:...] [--location URL]
//                      [--group 239.255.255.250] [--port 1900] [--repeat N]
//     Multicasts a well-formed SSDP NOTIFY ssdp:alive and exits — the
//     scripted device a smoke test stands in front of a gateway.
//
//   sdptool expect [--group 224.0.0.251] [--port 5353] [--timeout 3s]
//                  [--contains TEXT]
//     Joins the group and waits for one datagram (optionally containing
//     TEXT as a byte substring). Exit 0 and a `match ...` line on success,
//     exit 1 on timeout — the assertion half of the smoke test.
//
//   sdptool collide [--instance NAME] [--timeout 10s]
//     The hostile mDNS responder from docs/chaos.md: joins 224.0.0.251:5353
//     and answers every RFC 6762 §8.1 probe for NAME (every probed name when
//     omitted) with a defending TXT record carrying adversarial rdata, which
//     forces the probing gateway to rename and back off. Prints one
//     `defend ...` line per answer and a final `defended count=N`.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "live/event_loop.hpp"
#include "live/transport.hpp"
#include "mdns/dns.hpp"
#include "upnp/ssdp.hpp"

namespace {

std::optional<indiss::transport::Duration> parse_duration(
    std::string_view text) {
  std::size_t digits = 0;
  while (digits < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[digits])) != 0)) {
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  long long value = std::strtoll(std::string(text.substr(0, digits)).c_str(),
                                 nullptr, 10);
  std::string_view suffix = text.substr(digits);
  if (suffix == "ms") return indiss::transport::millis(value);
  if (suffix == "s" || suffix.empty()) {
    return indiss::transport::seconds(value);
  }
  return std::nullopt;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s ssdp-alive [--nt URN] [--usn USN] [--location URL]\n"
               "                     [--group A.B.C.D] [--port N] [--repeat N]\n"
               "       %s expect [--group A.B.C.D] [--port N] [--timeout 3s]\n"
               "                 [--contains TEXT]\n"
               "       %s collide [--instance NAME] [--timeout 10s]\n",
               argv0, argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace indiss;

  if (argc < 2) return usage(argv[0]);
  std::string_view command = argv[1];

  net::IpAddress group;
  std::uint16_t port = 0;
  transport::Duration timeout = transport::seconds(3);
  std::string nt = "urn:schemas-upnp-org:device:clock:1";
  std::string usn = "uuid:sdptool-0001";
  std::string location = "http://127.0.0.1:49152/description.xml";
  std::string contains;
  std::string instance;
  int repeat = 1;
  if (command == "ssdp-alive") {
    group = upnp::kSsdpMulticastGroup;
    port = upnp::kSsdpPort;
  } else if (command == "expect") {
    group = net::IpAddress(224, 0, 0, 251);
    port = 5353;
  } else if (command == "collide") {
    group = mdns::kMdnsGroup;
    port = mdns::kMdnsPort;
    timeout = transport::seconds(10);
  } else {
    return usage(argv[0]);
  }

  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--group" && (v = next()) != nullptr) {
      auto parsed = net::IpAddress::parse(v);
      if (!parsed.has_value()) return usage(argv[0]);
      group = *parsed;
    } else if (arg == "--port" && (v = next()) != nullptr) {
      port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--timeout" && (v = next()) != nullptr) {
      auto parsed = parse_duration(v);
      if (!parsed.has_value()) return usage(argv[0]);
      timeout = *parsed;
    } else if (arg == "--nt" && (v = next()) != nullptr) {
      nt = v;
    } else if (arg == "--usn" && (v = next()) != nullptr) {
      usn = v;
    } else if (arg == "--location" && (v = next()) != nullptr) {
      location = v;
    } else if (arg == "--contains" && (v = next()) != nullptr) {
      contains = v;
    } else if (arg == "--instance" && (v = next()) != nullptr) {
      instance = v;
    } else if (arg == "--repeat" && (v = next()) != nullptr) {
      repeat = std::atoi(v);
    } else {
      return usage(argv[0]);
    }
  }

  live::EventLoop loop;
  live::LiveConfig config;
  config.name = "sdptool";
  live::LiveTransport transport(loop, config);

  if (command == "ssdp-alive") {
    upnp::Notify notify;
    notify.kind = upnp::Notify::Kind::kAlive;
    notify.nt = nt;
    notify.usn = usn;
    notify.location = location;
    std::string wire;
    notify.serialize_into(wire);

    auto socket = transport.open_udp(0);
    net::Endpoint to{group, port};
    for (int n = 0; n < repeat; ++n) {
      socket->send_to(to, Bytes(wire.begin(), wire.end()));
    }
    // Let the kernel flush before the fd closes.
    loop.run_for(transport::millis(20));
    std::printf("sent ssdp-alive nt=%s to %s x%d\n", nt.c_str(),
                to.to_string().c_str(), repeat);
    return 0;
  }

  if (command == "collide") {
    // The hostile responder: defend probed names with rdata the gateway
    // cannot have composed itself, so every probe registers as a conflict
    // (RFC 6762 §8.1 step "if a conflicting response is received, choose
    // new name"). Distinct rdata matters — identical records would tiebreak
    // as a benign simultaneous probe and the gateway would keep its name.
    auto socket = transport.open_udp(port);
    socket->join_group(group);
    std::uint64_t defended = 0;
    mdns::DnsMessage message;
    mdns::DnsMessage defense;
    mdns::DnsEncoder encoder;
    net::Endpoint to{group, port};
    socket->set_receive_handler([&](const net::Datagram& datagram) {
      if (!mdns::decode_into(datagram.payload, message)) return;
      // Probes are queries carrying the proposed records in the authority
      // section (§8.1); plain browses have no business being answered here.
      if (message.is_response() || message.authorities.empty()) return;
      for (const auto& question : message.questions) {
        if (!instance.empty() && question.name != instance) continue;
        defense.clear();
        defense.flags = mdns::kFlagResponse | mdns::kFlagAuthoritative;
        auto& record = defense.answers.emplace_back();
        record.name = question.name;
        record.type = mdns::kTypeTxt;
        record.cache_flush = true;
        record.ttl = 120;
        record.txt.emplace_back("defender", "sdptool");
        BytesView wire = encoder.encode(defense);
        socket->send_to(to, Bytes(wire.begin(), wire.end()));
        ++defended;
        std::printf("defend name=%s from=%s\n", question.name.c_str(),
                    datagram.source.to_string().c_str());
        std::fflush(stdout);
      }
    });
    loop.run_for(timeout);
    std::printf("defended count=%llu\n",
                static_cast<unsigned long long>(defended));
    return 0;
  }

  // expect
  auto socket = transport.open_udp(port);
  socket->join_group(group);
  bool matched = false;
  net::Datagram seen;
  socket->set_receive_handler([&](const net::Datagram& datagram) {
    if (!contains.empty()) {
      auto it = std::search(datagram.payload.begin(), datagram.payload.end(),
                            contains.begin(), contains.end());
      if (it == datagram.payload.end()) return;
    }
    matched = true;
    seen = datagram;
    loop.stop();
  });
  loop.run_for(timeout);
  if (!matched) {
    std::fprintf(stderr, "expect: timeout after %.0f ms on %s:%u%s%s\n",
                 transport::to_millis(timeout), group.to_string().c_str(),
                 unsigned{port}, contains.empty() ? "" : " containing ",
                 contains.c_str());
    return 1;
  }
  std::printf("match from=%s bytes=%zu group=%s\n",
              seen.source.to_string().c_str(), seen.payload.size(),
              seen.destination.to_string().c_str());
  return 0;
}
